//! **E9 — ablations of the design choices.**
//!
//! The algorithm description (Section 2.1) makes several specific choices;
//! this experiment quantifies each on the jammed-batch workload
//! (`batch-jammed` in the registry):
//!
//! * **channel swap on Phase-3 restart** — "one important detail worth
//!   noting": restarting Phase 3 swaps the data and control channels. The
//!   ablation pins the channels instead.
//! * **backoff send density** — `(f/a)`-backoff sends `f(L)/a ≈ log L` times
//!   per stage; the ablation reduces it to 1 per stage (plain exponential
//!   backoff inside the same phase machinery), which Theorem 4.2 says must
//!   hurt recovery from jamming.
//! * **the control-batch constant `c₃`** and the backoff constant `c₂` —
//!   sensitivity scan.

use contention_analysis::{fnum, Summary, Table};
use contention_bench::scenario::{
    AlgoSpec, ArrivalSpec, JammingSpec, ParamsSpec, ScenarioRunner, ScenarioSpec,
};
use contention_bench::{replicate, run_batch, ExpArgs};

fn drain_stats(algo: &AlgoSpec, n: u32, jam: f64, seeds: u64) -> (Summary, f64) {
    let outs = replicate(seeds, |seed| {
        let out = run_batch(algo, n, jam, seed, 500_000_000);
        (out.slots as f64, if out.drained { 1.0 } else { 0.0 })
    });
    let slots = Summary::of(&outs.iter().map(|o| o.0).collect::<Vec<_>>()).unwrap();
    let drained = outs.iter().map(|o| o.1).sum::<f64>() / outs.len() as f64;
    (slots, drained)
}

fn main() {
    let args = ExpArgs::from_env();
    let n = if args.quick { 128 } else { 1024 };
    let jam = 0.25;

    println!(
        "E9: ablations on the jammed batch (n = {n}, jam = {jam}, seeds = {})\n",
        args.seeds
    );

    let base = ParamsSpec::constant_jamming();

    // 1. Channel swap.
    let mut t1 = Table::new(["variant", "drain slots", "vs baseline"])
        .with_title("E9a: Phase-3 channel swap");
    let (base_stats, _) = drain_stats(&AlgoSpec::Cjz(base.clone()), n, jam, args.seeds);
    let (noswap, _) = drain_stats(&AlgoSpec::CjzNoSwap(base.clone()), n, jam, args.seeds);
    t1.row([
        "with swap (paper)".to_string(),
        format!("{} ± {}", fnum(base_stats.mean), fnum(base_stats.ci95())),
        "1.000".to_string(),
    ]);
    t1.row([
        "no swap (ablated)".to_string(),
        format!("{} ± {}", fnum(noswap.mean), fnum(noswap.ci95())),
        fnum(noswap.mean / base_stats.mean),
    ]);
    println!("{}", t1.render());

    // 1b. Oracle ablation: what would a global clock buy? The oracle skips
    // Phase 1 (channel agreement) entirely and pins the channel roles.
    let mut t1b = Table::new(["variant", "drain slots", "vs baseline"])
        .with_title("E9a': global-clock oracle (skips Phase 1)");
    let (oracle, _) = drain_stats(&AlgoSpec::CjzOracle(base.clone()), n, jam, args.seeds);
    t1b.row([
        "no clock (paper)".to_string(),
        format!("{} ± {}", fnum(base_stats.mean), fnum(base_stats.ci95())),
        "1.000".to_string(),
    ]);
    t1b.row([
        "global clock (oracle)".to_string(),
        format!("{} ± {}", fnum(oracle.mean), fnum(oracle.ci95())),
        fnum(oracle.mean / base_stats.mean),
    ]);
    println!("{}", t1b.render());

    // 1c. Model-tier ablation: what do the model's restrictions cost in
    // total? paper (1 channel, no clock) vs oracle (1 channel + global
    // clock) vs dual (2 ideal channels, Section 2's thought experiment).
    {
        use contention_core::DualCjzFactory;
        use contention_sim::dual::DualSimulator;
        use contention_sim::SimConfig;
        // The dual-channel thought experiment runs outside the standard
        // engine; the workload (adversary stack) still comes from the
        // scenario spec.
        let workload = ScenarioSpec::batch(n, jam);
        let dual = {
            let runs = replicate(args.seeds, |seed| {
                let factory = DualCjzFactory::new(base.build());
                let mut sim = DualSimulator::new(
                    SimConfig::with_seed(seed),
                    factory,
                    workload.build_adversary(),
                );
                assert!(sim.run_until_drained(500_000_000));
                sim.current_slot() as f64
            });
            Summary::of(&runs).unwrap()
        };
        let mut t1c = Table::new(["model tier", "drain slots", "vs paper"])
            .with_title("E9a'': model-restriction cost (same workload)");
        t1c.row([
            "1 channel, no clock (paper)".to_string(),
            format!("{} ± {}", fnum(base_stats.mean), fnum(base_stats.ci95())),
            "1.000".to_string(),
        ]);
        t1c.row([
            "1 channel + global clock".to_string(),
            format!("{} ± {}", fnum(oracle.mean), fnum(oracle.ci95())),
            fnum(oracle.mean / base_stats.mean),
        ]);
        t1c.row([
            "2 ideal channels".to_string(),
            format!("{} ± {}", fnum(dual.mean), fnum(dual.ci95())),
            fnum(dual.mean / base_stats.mean),
        ]);
        println!("{}", t1c.render());
        println!(
            "  two ideal channels beat one: {}",
            if dual.mean < base_stats.mean {
                "PASS"
            } else {
                "FAIL"
            }
        );
        println!();
    }

    // 2. Send density: c2 sweep (c2 -> 0 approximates 1-send-per-stage).
    let mut t2 =
        Table::new(["c2", "drain slots", "vs c2=1"]).with_title("E9b: backoff send density (c2)");
    for c2 in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let algo = AlgoSpec::Cjz(ParamsSpec::constant_jamming().with_c2(c2));
        let (s, _) = drain_stats(&algo, n, jam, args.seeds);
        t2.row([
            format!("{c2}"),
            format!("{} ± {}", fnum(s.mean), fnum(s.ci95())),
            fnum(s.mean / base_stats.mean),
        ]);
    }
    println!("{}", t2.render());

    // 3. Control-batch constant c3.
    let mut t3 =
        Table::new(["c3", "drain slots", "vs c3=2"]).with_title("E9c: control-batch constant (c3)");
    for c3 in [1.0, 2.0, 4.0, 8.0] {
        let algo = AlgoSpec::Cjz(ParamsSpec::constant_jamming().with_c3(c3));
        let (s, _) = drain_stats(&algo, n, jam, args.seeds);
        t3.row([
            format!("{c3}"),
            format!("{} ± {}", fnum(s.mean), fnum(s.ci95())),
            fnum(s.mean / base_stats.mean),
        ]);
    }
    println!("{}", t3.render());

    // 4. Recovery ablation: single node behind a jam wall, c2 sweep —
    // density is what buys recovery (Theorem 4.2 mechanism).
    let j = if args.quick { 1u64 << 10 } else { 1u64 << 14 };
    let wall = ScenarioRunner::new(
        ScenarioSpec::new(format!("front-loaded/{j}"))
            .arrivals(ArrivalSpec::batch(1))
            .jamming(JammingSpec::FrontLoaded { until: j })
            .until_drained(64 * j)
            .seeds(args.seeds),
    );
    let mut t4 = Table::new(["c2", "recovery slots"])
        .with_title(format!("E9d: single-node recovery after {j}-slot jam wall"));
    let mut recoveries = Vec::new();
    for c2 in [0.25, 1.0, 4.0] {
        let algo = AlgoSpec::Cjz(ParamsSpec::constant_jamming().with_c2(c2));
        let recs = wall.collect(&algo, |_seed, out| {
            out.trace
                .departures()
                .first()
                .map(|d| (d.departure_slot - j) as f64)
                .unwrap_or((63 * j) as f64)
        });
        let s = Summary::of(&recs).unwrap();
        recoveries.push(s.mean);
        t4.row([
            format!("{c2}"),
            format!("{} ± {}", fnum(s.mean), fnum(s.ci95())),
        ]);
    }
    println!("{}", t4.render());

    // Verdicts.
    println!(
        "channel-swap ablation changes drain by {}x (informational)",
        fnum(noswap.mean / base_stats.mean)
    );
    println!(
        "denser backoff (higher c2) recovers faster from the jam wall: {} ({} → {})",
        if recoveries.last() < recoveries.first() {
            "PASS"
        } else {
            "FAIL"
        },
        fnum(recoveries[0]),
        fnum(*recoveries.last().unwrap())
    );
    println!(
        "(Constants trade batch efficiency against jamming recovery — exactly the dilemma \
         the lower bounds formalize; the paper's choices sit on the optimal frontier.)"
    );
}
