//! **E6 — Corollary 3.6: latency under smooth adversaries.**
//!
//! Corollary 3.6: if the adversary is *smooth* — every suffix window of
//! length `j` contains `O(j/f(j))` arrivals and `O(j/g(j))` jams — then an
//! (f,g)-throughput algorithm guarantees that every node arriving before
//! slot `t−j` has left by slot `t`, w.h.p. in `j`.
//!
//! The experiment drives the paper's algorithm with the registry's
//! `smooth` scenario (a smoothness-enforced greedy adversary) and checks,
//! at a sequence of checkpoint slots, the maximum *age* of any node still
//! in the system. The corollary predicts ages stay small relative to
//! elapsed time — and in particular do not grow linearly with the horizon
//! (no starvation).

use contention_analysis::{fnum, Summary, Table};
use contention_bench::scenario::{
    AlgoSpec, ArrivalSpec, JammingSpec, ParamsSpec, ScenarioRunner, ScenarioSpec, SmoothSpec,
};
use contention_bench::ExpArgs;

fn main() {
    let args = ExpArgs::from_env();
    let horizon = args.horizon.unwrap_or(args.scaled(1 << 15, 1 << 11));
    let checkpoints: Vec<u64> = (8..=63)
        .map(|p| 1u64 << p)
        .take_while(|&t| t <= horizon)
        .collect();

    println!("E6: max node age under a smooth adversary (Corollary 3.6)");
    println!("horizon = {horizon}, seeds = {}\n", args.seeds);

    let algo = AlgoSpec::cjz_constant_jamming();
    let spec = ScenarioSpec::new("smooth")
        .algo(algo.clone())
        .arrivals(ArrivalSpec::saturated())
        .jamming(JammingSpec::random(0.4))
        .smooth(SmoothSpec {
            params: ParamsSpec::constant_jamming(),
            ca: 1.0, // arrivals ≤ ca·j/f(j) per window
            cd: 0.5, // jams ≤ cd·j/g(j) per window
        })
        .fixed_horizon(horizon)
        .seeds(args.seeds);
    let runner = ScenarioRunner::new(spec);

    // The age metric needs slot-by-slot inspection, so drive the
    // spec-built simulator manually.
    let per_seed = {
        let checkpoints = checkpoints.clone();
        runner.collect_sim(&algo, move |_seed, mut sim| {
            let mut ages = Vec::new();
            let mut running_max_age = 0u64;
            let mut next_cp = 0usize;
            for slot in 1..=horizon {
                sim.step();
                let oldest = sim.survivor_ages().into_iter().max().unwrap_or(0);
                running_max_age = running_max_age.max(oldest);
                if next_cp < checkpoints.len() && slot == checkpoints[next_cp] {
                    // Max age observed in any slot of (prev checkpoint, this
                    // one].
                    ages.push(running_max_age);
                    running_max_age = 0;
                    next_cp += 1;
                }
            }
            let trace = sim.into_trace();
            (ages, trace.total_arrivals(), trace.total_successes())
        })
    };

    let mut table = Table::new(["checkpoint t", "max age (mean)", "max age (max)", "age / t"])
        .with_title("E6: worst node age observed in each dyadic window");
    let mut age_fraction_final = 0.0;
    for (idx, &cp) in checkpoints.iter().enumerate() {
        let vals: Vec<f64> = per_seed.iter().map(|r| r.0[idx] as f64).collect();
        let s = Summary::of(&vals).unwrap();
        let frac = s.max / cp as f64;
        if idx == checkpoints.len() - 1 {
            age_fraction_final = frac;
        }
        table.row([format!("{cp}"), fnum(s.mean), fnum(s.max), fnum(frac)]);
    }
    println!("{}", table.render());

    let arrivals = Summary::of(&per_seed.iter().map(|r| r.1 as f64).collect::<Vec<_>>()).unwrap();
    let successes = Summary::of(&per_seed.iter().map(|r| r.2 as f64).collect::<Vec<_>>()).unwrap();
    println!(
        "arrivals {} ± {}, delivered {} ± {}",
        fnum(arrivals.mean),
        fnum(arrivals.ci95()),
        fnum(successes.mean),
        fnum(successes.ci95())
    );

    // Verdicts: (1) no starvation — at the final checkpoint the oldest node
    // is far younger than the horizon; (2) the system delivers the large
    // majority of offered load.
    let no_starvation = age_fraction_final < 0.5;
    let keeps_up = successes.mean >= 0.8 * arrivals.mean;
    println!(
        "\nno starvation (oldest/t < 0.5 at final checkpoint): {} ({} of t)",
        if no_starvation { "PASS" } else { "FAIL" },
        fnum(age_fraction_final)
    );
    println!(
        "delivers ≥ 80% of smooth offered load: {}",
        if keeps_up { "PASS" } else { "FAIL" }
    );
    println!(
        "(Corollary 3.6: under smooth adversaries, nodes older than j are gone by \
         slot t w.h.p. in j — empirically, ages stay well below elapsed time.)"
    );
}
