//! **E12 (extension) — saturated-channel capacity.**
//!
//! Not a paper claim, but the natural engineering question downstream
//! users ask: with the channel permanently backlogged (a fixed standing
//! population, replenished on every delivery — the registry's `saturated`
//! scenario), how many messages per slot does each algorithm sustain, and
//! how does jamming scale it?
//!
//! The paper's guarantees are worst-case; this table is the average-case
//! complement. For reference, the theoretical optimum for *any* algorithm
//! under saturation with backlog `B` is `1/e ≈ 0.368` deliveries per
//! unjammed slot (perfectly tuned ALOHA), scaled by `(1 − jam)`.

use contention_analysis::{fnum, Summary, Table};
use contention_bench::scenario::{
    AlgoSpec, ArrivalSpec, BaselineSpec, JammingSpec, ScenarioRunner, ScenarioSpec,
};
use contention_bench::ExpArgs;

fn main() {
    let args = ExpArgs::from_env();
    let horizon = args.horizon.unwrap_or(args.scaled(1 << 15, 1 << 12));
    let backlog = 32u64;
    let jams = [0.0, 0.25];

    println!("E12 (extension): saturated capacity, standing backlog = {backlog}");
    println!("horizon = {horizon}, seeds = {}\n", args.seeds);

    let mut algos: Vec<AlgoSpec> = vec![
        AlgoSpec::cjz_constant_jamming(),
        AlgoSpec::Baseline(BaselineSpec::BinaryExponential),
        AlgoSpec::Baseline(BaselineSpec::SmoothedBeb),
        AlgoSpec::Baseline(BaselineSpec::LogBackoff(2.0)),
        AlgoSpec::Baseline(BaselineSpec::Sawtooth),
        // ALOHA tuned exactly to the backlog: the saturation optimum.
        AlgoSpec::Baseline(BaselineSpec::Aloha(1.0 / backlog as f64)),
    ];
    algos.push(AlgoSpec::Baseline(BaselineSpec::ResetBeb));

    for &jam in &jams {
        let runner = ScenarioRunner::new(
            ScenarioSpec::new(format!("saturated/{backlog}"))
                .arrivals(ArrivalSpec::Saturated {
                    target: Some(backlog),
                    budget: None,
                    horizon: None,
                })
                .jamming(JammingSpec::random(jam))
                .fixed_horizon(horizon)
                .seeds(args.seeds),
        );
        let mut table = Table::new([
            "algorithm",
            "deliveries",
            "per slot",
            "vs (1-jam)/e",
            "oldest waiting",
            "latency p99",
        ])
        .with_title(format!("E12: saturated throughput + fairness, jam = {jam}"));
        let ideal = (1.0 - jam) / std::f64::consts::E;
        for algo in &algos {
            let runs = runner.collect(algo, |_seed, out| {
                // Fairness: age of the oldest node still waiting at the end
                // (a starvation witness), and the p99 delivered latency.
                let oldest = out
                    .trace
                    .survivors()
                    .iter()
                    .map(|s| horizon + 1 - s.arrival_slot)
                    .max()
                    .unwrap_or(0) as f64;
                let p99 = out.trace.latency_quantile(0.99).unwrap_or(f64::NAN);
                (out.trace.total_successes() as f64, oldest, p99)
            });
            let s = Summary::of(&runs.iter().map(|r| r.0).collect::<Vec<_>>()).unwrap();
            let oldest = Summary::of(&runs.iter().map(|r| r.1).collect::<Vec<_>>()).unwrap();
            let p99s: Vec<f64> = runs.iter().map(|r| r.2).filter(|x| x.is_finite()).collect();
            let p99 = Summary::of(&p99s)
                .map(|x| fnum(x.mean))
                .unwrap_or_else(|| "-".into());
            let rate = s.mean / horizon as f64;
            table.row([
                algo.name(),
                format!("{} ± {}", fnum(s.mean), fnum(s.ci95())),
                fnum(rate),
                fnum(rate / ideal),
                fnum(oldest.mean),
                p99,
            ]);
        }
        println!("{}", table.render());
    }
    println!(
        "(Read the rate column together with the fairness columns: windowed BEB posts \
         rates above 1/e by running a revolving door — each freshly injected node sends \
         in its first slot with certainty and wins, while the 31 older nodes starve with \
         horizon-scale ages. ALOHA at p = 1/backlog is the symmetric optimum but must \
         *know* the backlog. The paper's protocol sustains a lower raw rate, yet keeps \
         ages bounded and retains its worst-case guarantees — saturation throughput, \
         fairness, and robustness are three different axes.)"
    );
}
