//! **E12 (extension) — saturated-channel capacity.**
//!
//! Not a paper claim, but the natural engineering question downstream
//! users ask: with the channel permanently backlogged (a fixed standing
//! population, replenished on every delivery), how many messages per slot
//! does each algorithm sustain, and how does jamming scale it?
//!
//! The paper's guarantees are worst-case; this table is the average-case
//! complement. For reference, the theoretical optimum for *any* algorithm
//! under saturation with backlog `B` is `1/e ≈ 0.368` deliveries per
//! unjammed slot (perfectly tuned ALOHA), scaled by `(1 − jam)`.

use contention_analysis::{fnum, Summary, Table};
use contention_baselines::Baseline;
use contention_bench::{replicate, run_fixed, Algo, ExpArgs};
use contention_sim::adversary::{
    Adversary, CompositeAdversary, NoJamming, RandomJamming, SaturatedArrival,
};

fn main() {
    let args = ExpArgs::from_env();
    let horizon = args.horizon.unwrap_or(args.scaled(1 << 15, 1 << 12));
    let backlog = 32u64;
    let jams = [0.0, 0.25];

    println!("E12 (extension): saturated capacity, standing backlog = {backlog}");
    println!("horizon = {horizon}, seeds = {}\n", args.seeds);

    let mut algos: Vec<Algo> = vec![
        Algo::cjz_constant_jamming(),
        Algo::Baseline(Baseline::BinaryExponential),
        Algo::Baseline(Baseline::SmoothedBeb),
        Algo::Baseline(Baseline::LogBackoff(2.0)),
        Algo::Baseline(Baseline::Sawtooth),
        // ALOHA tuned exactly to the backlog: the saturation optimum.
        Algo::Baseline(Baseline::Aloha(1.0 / backlog as f64)),
    ];
    algos.push(Algo::Baseline(Baseline::ResetBeb));

    for &jam in &jams {
        let mut table = Table::new([
            "algorithm",
            "deliveries",
            "per slot",
            "vs (1-jam)/e",
            "oldest waiting",
            "latency p99",
        ])
        .with_title(format!("E12: saturated throughput + fairness, jam = {jam}"));
        let ideal = (1.0 - jam) / std::f64::consts::E;
        for algo in &algos {
            let runs = replicate(args.seeds, |seed| {
                let adv: Box<dyn Adversary> = if jam > 0.0 {
                    Box::new(CompositeAdversary::new(
                        SaturatedArrival::new(backlog),
                        RandomJamming::new(jam),
                    ))
                } else {
                    Box::new(CompositeAdversary::new(
                        SaturatedArrival::new(backlog),
                        NoJamming,
                    ))
                };
                let trace = run_fixed(algo.clone(), adv, seed, horizon);
                // Fairness: age of the oldest node still waiting at the end
                // (a starvation witness), and the p99 delivered latency.
                let oldest = trace
                    .survivors()
                    .iter()
                    .map(|s| horizon + 1 - s.arrival_slot)
                    .max()
                    .unwrap_or(0) as f64;
                let p99 = trace.latency_quantile(0.99).unwrap_or(f64::NAN);
                (trace.total_successes() as f64, oldest, p99)
            });
            let s = Summary::of(&runs.iter().map(|r| r.0).collect::<Vec<_>>()).unwrap();
            let oldest = Summary::of(&runs.iter().map(|r| r.1).collect::<Vec<_>>()).unwrap();
            let p99s: Vec<f64> = runs.iter().map(|r| r.2).filter(|x| x.is_finite()).collect();
            let p99 = Summary::of(&p99s).map(|x| fnum(x.mean)).unwrap_or_else(|| "-".into());
            let rate = s.mean / horizon as f64;
            table.row([
                algo.name(),
                format!("{} ± {}", fnum(s.mean), fnum(s.ci95())),
                fnum(rate),
                fnum(rate / ideal),
                fnum(oldest.mean),
                p99,
            ]);
        }
        println!("{}", table.render());
    }
    println!(
        "(Read the rate column together with the fairness columns: windowed BEB posts \
         rates above 1/e by running a revolving door — each freshly injected node sends \
         in its first slot with certainty and wins, while the 31 older nodes starve with \
         horizon-scale ages. ALOHA at p = 1/backlog is the symmetric optimum but must \
         *know* the backlog. The paper's protocol sustains a lower raw rate, yet keeps \
         ages bounded and retains its worst-case guarantees — saturation throughput, \
         fairness, and robustness are three different axes.)"
    );
}
