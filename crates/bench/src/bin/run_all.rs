//! Run every experiment binary in sequence (a convenience driver for
//! regenerating EXPERIMENTS.md).
//!
//! ```sh
//! cargo run --release -p contention-bench --bin run_all -- --quick
//! ```
//!
//! Flags are forwarded to each experiment.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "exp_tradeoff",
    "exp_constant_jamming",
    "exp_batch",
    "exp_claim_351",
    "exp_backoff_necessity",
    "exp_smooth_latency",
    "exp_baselines",
    "exp_energy",
    "exp_ablation",
    "exp_crossover",
    "exp_impossibility",
    "exp_saturation",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        println!("\n================================================================");
        println!("=== {exp} {}", args.join(" "));
        println!("================================================================");
        let status = Command::new(exe_dir.join(exp))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        if !status.success() {
            failures.push(*exp);
        }
    }
    println!("\n================================================================");
    if failures.is_empty() {
        println!("all {} experiments completed", EXPERIMENTS.len());
    } else {
        println!("FAILED experiments: {failures:?}");
        std::process::exit(1);
    }
}
