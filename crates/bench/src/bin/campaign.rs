//! `campaign` — list, inspect, run, and report on named parameter sweeps.
//!
//! ```sh
//! # What campaigns exist?
//! cargo run --release -p contention-bench --bin campaign
//!
//! # Run one by name (ASCII table; --csv/--jsonl write row files).
//! cargo run --release -p contention-bench --bin campaign -- run tradeoff
//! cargo run --release -p contention-bench --bin campaign -- run jamming-robustness --smoke
//! cargo run --release -p contention-bench --bin campaign -- run tradeoff --csv out.csv --jsonl out.jsonl
//!
//! # Print a campaign's SweepSpec as JSON, or run a spec from a file.
//! cargo run --release -p contention-bench --bin campaign -- show tradeoff
//! cargo run --release -p contention-bench --bin campaign -- run --spec my-sweep.json
//!
//! # Regenerate RESULTS.md from the report campaigns (deterministic:
//! # byte-identical across runs on the same tree).
//! cargo run --release -p contention-bench --bin campaign -- report
//! cargo run --release -p contention-bench --bin campaign -- report --smoke --out RESULTS-smoke.md
//! ```

use contention_analysis::Table;
use contention_bench::campaign::{
    self, cells_table, render_results_md, to_csv, to_jsonl, CampaignRunner, SweepSpec,
};
use contention_bench::{first_positional, unknown_name_exit};

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn list() {
    let mut table = Table::new(["name", "what it sweeps"])
        .with_title("campaign registry (run with `run <name>`)");
    for entry in campaign::entries() {
        table.row([entry.name.to_string(), entry.summary.to_string()]);
    }
    println!("{}", table.render());
}

/// Resolve the sweep named on the command line (`<name>` or `--spec FILE`).
fn resolve(args: &[String]) -> SweepSpec {
    if let Some(i) = args.iter().position(|a| a == "--spec") {
        let path = args
            .get(i + 1)
            .unwrap_or_else(|| fail("--spec needs a file path"));
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        return SweepSpec::from_json_str(&text)
            .unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")));
    }
    // The first non-flag token that is not a flag *value* is the name.
    let name = first_positional(args, &["--seeds", "--csv", "--jsonl", "--out"]);
    match name {
        Some(name) => match campaign::lookup(name) {
            Some(sweep) => sweep,
            None => unknown_name_exit("campaign", name, campaign::names()),
        },
        None => fail("missing campaign name; run without arguments to list the registry"),
    }
}

fn grab(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn write_or_die(path: &str, contents: String) {
    if let Err(e) = std::fs::write(path, contents) {
        fail(&format!("failed to write {path}: {e}"));
    }
    println!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    match args.first().map(String::as_str) {
        None => list(),
        Some("show") => {
            let sweep = resolve(&args[1..]);
            println!("{}", sweep.to_json_string());
        }
        Some("run") => {
            let mut sweep = resolve(&args[1..]);
            if smoke {
                sweep = sweep.smoke();
            }
            if let Some(seeds) = grab(&args, "--seeds").and_then(|s| s.parse().ok()) {
                sweep = sweep.seeds(seeds);
            }
            println!(
                "campaign `{}`: {} cell(s)…\n",
                sweep.name,
                sweep.cell_count()
            );
            let result = CampaignRunner::new(sweep).run();
            println!("{}", cells_table(&result).render());
            if let Some(path) = grab(&args, "--csv") {
                write_or_die(&path, to_csv(&result));
            }
            if let Some(path) = grab(&args, "--jsonl") {
                write_or_die(&path, to_jsonl(&result));
            }
        }
        Some("report") => {
            let out = grab(&args, "--out").unwrap_or_else(|| "RESULTS.md".to_string());
            write_or_die(&out, render_results_md(smoke));
        }
        Some(other) => fail(&format!(
            "unknown subcommand `{other}` (expected `show`, `run`, or `report`)"
        )),
    }
}
