//! `campaign` — list, inspect, run, and report on named parameter sweeps.
//!
//! ```sh
//! # What campaigns exist?
//! cargo run --release -p contention-bench --bin campaign
//!
//! # Run one by name (ASCII table; --csv/--jsonl stream row files).
//! cargo run --release -p contention-bench --bin campaign -- run tradeoff
//! cargo run --release -p contention-bench --bin campaign -- run jamming-robustness --smoke
//! cargo run --release -p contention-bench --bin campaign -- run tradeoff --csv out.csv --jsonl out.jsonl
//!
//! # Journaled (resumable) runs: every completed cell is fsync'd to
//! # DIR/journal.jsonl. Ctrl-C finishes in-flight cells, keeps the
//! # journal, and exits 130; kill -9 costs at most one torn line. Either
//! # way, rerunning with --resume continues at the last completed cell
//! # and produces byte-identical final output.
//! cargo run --release -p contention-bench --bin campaign -- run mega-batch-scaling --journal jobs/mega
//! cargo run --release -p contention-bench --bin campaign -- run mega-batch-scaling --journal jobs/mega --resume
//!
//! # Worker count is a wall-clock knob only (output is byte-identical
//! # regardless): `--threads N` caps the pool, default = all cores.
//!
//! # Print a campaign's SweepSpec as JSON, or run a spec from a file.
//! cargo run --release -p contention-bench --bin campaign -- show tradeoff
//! cargo run --release -p contention-bench --bin campaign -- run --spec my-sweep.json
//!
//! # Regenerate RESULTS.md from the report campaigns (deterministic:
//! # byte-identical across runs on the same tree).
//! cargo run --release -p contention-bench --bin campaign -- report
//! cargo run --release -p contention-bench --bin campaign -- report --smoke --out RESULTS-smoke.md
//! ```

use std::path::PathBuf;

use contention_analysis::Table;
use contention_bench::campaign::{self, cells_table, render_results_md, SweepSpec};
use contention_bench::service::{run_local, LocalOptions};
use contention_bench::{first_positional, unknown_name_exit};

#[path = "helpers/sigint.rs"]
mod sigint;

/// Exit code for a SIGINT-drained run (the shell convention, 128 + 2);
/// distinct from usage errors (2) and crashes, so wrappers can tell "I
/// interrupted it and the journal is resumable" apart from failure.
const EXIT_INTERRUPTED: i32 = 130;

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn list() {
    let mut table = Table::new(["name", "what it sweeps"])
        .with_title("campaign registry (run with `run <name>`)");
    for entry in campaign::entries() {
        table.row([entry.name.to_string(), entry.summary.to_string()]);
    }
    println!("{}", table.render());
}

/// Resolve the sweep named on the command line (`<name>` or `--spec FILE`).
fn resolve(args: &[String]) -> SweepSpec {
    if let Some(i) = args.iter().position(|a| a == "--spec") {
        let path = args
            .get(i + 1)
            .unwrap_or_else(|| fail("--spec needs a file path"));
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        return SweepSpec::from_json_str(&text)
            .unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")));
    }
    // The first non-flag token that is not a flag *value* is the name.
    let name = first_positional(
        args,
        &[
            "--seeds",
            "--csv",
            "--jsonl",
            "--out",
            "--journal",
            "--threads",
        ],
    );
    match name {
        Some(name) => match campaign::lookup(name) {
            Some(sweep) => sweep,
            None => unknown_name_exit("campaign", name, campaign::names()),
        },
        None => fail("missing campaign name; run without arguments to list the registry"),
    }
}

fn grab(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn write_or_die(path: &str, contents: String) {
    if let Err(e) = std::fs::write(path, contents) {
        fail(&format!("failed to write {path}: {e}"));
    }
    println!("wrote {path}");
}

fn run(args: &[String], smoke: bool) {
    let mut sweep = resolve(args);
    if smoke {
        sweep = sweep.smoke();
    }
    if let Some(seeds) = grab(args, "--seeds").and_then(|s| s.parse().ok()) {
        sweep = sweep.seeds(seeds);
    }
    let journal = grab(args, "--journal").map(PathBuf::from);
    let resume = args.iter().any(|a| a == "--resume");
    if resume && journal.is_none() {
        fail("--resume needs --journal DIR (the directory of the interrupted run)");
    }
    let csv = grab(args, "--csv");
    let jsonl = grab(args, "--jsonl");
    println!(
        "campaign `{}`: {} cell(s)…\n",
        sweep.name,
        sweep.cell_count()
    );
    let opts = LocalOptions {
        dir: journal.clone(),
        resume,
        interrupt: Some(sigint::install()),
        csv: csv.as_ref().map(PathBuf::from),
        jsonl: jsonl.as_ref().map(PathBuf::from),
        // Worker count never changes the output (results assemble in
        // grid order), only the wall clock.
        threads: grab(args, "--threads").map(|t| {
            t.parse()
                .unwrap_or_else(|_| fail(&format!("--threads `{t}` is not a number")))
        }),
    };
    let name = sweep.name.clone();
    let outcome = run_local(sweep, opts).unwrap_or_else(|e| fail(&e.to_string()));
    if outcome.recovered_units > 0 {
        println!(
            "resumed {} of {} cell(s) from the journal",
            outcome.recovered_units, outcome.total_units
        );
    }
    if outcome.interrupted {
        // Streamed CSV/JSONL prefixes and the journal are on disk;
        // nothing further to write.
        eprintln!(
            "interrupted: {}/{} cell(s) completed and journaled{}",
            outcome.done_units,
            outcome.total_units,
            match &journal {
                Some(dir) => format!(
                    "; rerun with `--journal {} --resume` to continue",
                    dir.display()
                ),
                None => "; rerun with --journal DIR to make runs resumable".into(),
            }
        );
        std::process::exit(EXIT_INTERRUPTED);
    }
    let result = outcome
        .result
        .unwrap_or_else(|| fail(&format!("campaign `{name}` ended incomplete")));
    println!("{}", cells_table(&result).render());
    // Row files were streamed (and flushed per cell) while running.
    if let Some(path) = csv {
        println!("wrote {path}");
    }
    if let Some(path) = jsonl {
        println!("wrote {path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    match args.first().map(String::as_str) {
        None => list(),
        Some("show") => {
            let sweep = resolve(&args[1..]);
            println!("{}", sweep.to_json_string());
        }
        Some("run") => run(&args[1..], smoke),
        Some("report") => {
            let out = grab(&args, "--out").unwrap_or_else(|| "RESULTS.md".to_string());
            write_or_die(&out, render_results_md(smoke));
        }
        Some(other) => fail(&format!(
            "unknown subcommand `{other}` (expected `show`, `run`, or `report`)"
        )),
    }
}
