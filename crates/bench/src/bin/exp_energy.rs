//! **E8 — energy: channel accesses per delivered message.**
//!
//! The related-work discussion measures algorithms by the number of channel
//! accesses a node makes before succeeding (*energy complexity*); existing
//! algorithms in this family use `O(polylog n)` accesses per node. The
//! stage-based `(f/a)`-backoff sends `Θ(log L)` times per stage of length
//! `L`, so a node alive for `T` slots pays `Θ(log² T)` accesses — polylog
//! as long as drain time is polynomial in `n`.
//!
//! The experiment drains batches of `n` and reports mean and max accesses
//! per delivered node, checking the `log²`-normalized column stays flat.

use contention_analysis::{best_fit, fnum, GrowthModel, Summary, Table};
use contention_bench::scenario::BaselineSpec;
use contention_bench::{replicate, run_batch_light, AlgoSpec, ExpArgs};

fn main() {
    let args = ExpArgs::from_env();
    let max_pow = if args.quick { 9 } else { 13 };
    let min_pow = 5;
    let jams = [0.0, 0.25];

    println!("E8: channel accesses per delivered message (batch of n)");
    println!("n = 2^{min_pow}..2^{max_pow}, seeds = {}\n", args.seeds);

    let algo = AlgoSpec::cjz_constant_jamming();

    for &jam in &jams {
        let mut table = Table::new([
            "n",
            "mean accesses",
            "max accesses",
            "mean / log2^2(n)",
            "mean latency",
        ])
        .with_title(format!("E8: cjz accesses, jam = {jam}"));

        let mut points: Vec<(f64, f64)> = Vec::new();
        for p in min_pow..=max_pow {
            let n = 1u32 << p;
            let outs = replicate(args.seeds, |seed| {
                let out = run_batch_light(&algo, n, jam, seed, 4096 * u64::from(n));
                assert!(out.drained, "cjz drains well within 4096n slots");
                (
                    out.trace.mean_accesses().unwrap_or(0.0),
                    out.trace.max_accesses().unwrap_or(0) as f64,
                    out.trace.mean_latency().unwrap_or(0.0),
                )
            });
            let mean_acc = Summary::of(&outs.iter().map(|o| o.0).collect::<Vec<_>>()).unwrap();
            let max_acc = Summary::of(&outs.iter().map(|o| o.1).collect::<Vec<_>>()).unwrap();
            let lat = Summary::of(&outs.iter().map(|o| o.2).collect::<Vec<_>>()).unwrap();
            let lg = f64::from(p);
            table.row([
                format!("{n}"),
                format!("{} ± {}", fnum(mean_acc.mean), fnum(mean_acc.ci95())),
                fnum(max_acc.mean),
                fnum(mean_acc.mean / (lg * lg)),
                fnum(lat.mean),
            ]);
            points.push((f64::from(n), mean_acc.mean));
        }
        println!("{}", table.render());

        let ranked = best_fit(&points);
        println!(
            "  accesses growth best fit at jam={jam}: {} (residual {})",
            ranked[0].model,
            fnum(ranked[0].rel_residual)
        );
        // Energy must be sub-linear in n — polylog in practice. Accept if a
        // polylog model (const/log/log²) ranks above linear.
        let polylog_above_linear = ranked
            .iter()
            .position(|f| {
                matches!(
                    f.model,
                    GrowthModel::Constant | GrowthModel::Log | GrowthModel::LogSq
                )
            })
            .map(|pos| {
                pos < ranked
                    .iter()
                    .position(|f| f.model == GrowthModel::Linear)
                    .unwrap_or(usize::MAX)
            })
            .unwrap_or(false);
        println!(
            "  accesses polylog (ranked above linear): {}\n",
            if polylog_above_linear { "PASS" } else { "FAIL" }
        );
    }

    // Contrast with smoothed-beb: its per-node energy over a drain of
    // length T is the harmonic sum ≈ ln T — lower, but it pays with ω(n)
    // completion (E4). Report for context.
    println!("E8b: smoothed-beb energy for context (jam = 0)");
    let beb = AlgoSpec::Baseline(BaselineSpec::SmoothedBeb);
    let mut table =
        Table::new(["n", "mean accesses", "max accesses"]).with_title("E8b: smoothed-beb accesses");
    for p in [min_pow, (min_pow + max_pow) / 2, max_pow] {
        let n = 1u32 << p;
        let outs = replicate(args.seeds, |seed| {
            // Heavy-tailed completion: censor at 4096n slots; accesses are
            // read from the departure log, so censoring only drops the
            // final straggler(s).
            let out = run_batch_light(&beb, n, 0.0, seed, 4096 * u64::from(n));
            (
                out.trace.mean_accesses().unwrap_or(0.0),
                out.trace.max_accesses().unwrap_or(0) as f64,
            )
        });
        let mean_acc = Summary::of(&outs.iter().map(|o| o.0).collect::<Vec<_>>()).unwrap();
        let max_acc = Summary::of(&outs.iter().map(|o| o.1).collect::<Vec<_>>()).unwrap();
        table.row([format!("{n}"), fnum(mean_acc.mean), fnum(max_acc.mean)]);
    }
    println!("{}", table.render());
    println!(
        "(Energy-vs-latency trade: cjz spends polylog accesses to guarantee fast, \
         jamming-proof drainage; smoothed-beb is cheaper per node but takes ω(n) to finish.)"
    );
}
