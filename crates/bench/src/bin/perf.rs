//! `perf` — the pinned performance suite and `BENCH_*.json` writer.
//!
//! Runs a fixed set of registry scenarios at measurement scale, times each
//! one, and writes a machine-readable `BENCH_<date>.json` so every PR's
//! engine throughput is recorded against the same workloads. See
//! EXPERIMENTS.md ("Performance tracking") for the schema.
//!
//! ```sh
//! # Full suite (~seconds); writes BENCH_<date>.json in the repo root.
//! cargo run --release -p contention-bench --bin perf
//!
//! # Tiny horizons, same structure — keeps the harness itself from rotting
//! # in CI without burning minutes.
//! cargo run --release -p contention-bench --bin perf -- --smoke
//!
//! # Custom output path / suite label.
//! cargo run --release -p contention-bench --bin perf -- --out bench.json --label post-rewrite
//!
//! # Regression gate: rerun the suite and compare slots/s against the
//! # newest committed BENCH_*.json (or --baseline FILE); exits 1 if any
//! # pinned scenario regresses by more than 10% (--tolerance to adjust).
//! cargo run --release -p contention-bench --bin perf -- --check
//! ```

use std::time::{Instant, SystemTime, UNIX_EPOCH};

use contention_bench::scenario::{lookup, Json, ScenarioRunner, ScenarioSpec};
use contention_sim::Execution;

/// The pinned suite: report name, registry scenario, measurement-scale
/// seed count, a smoke-mode seed count, and an optional execution-mode
/// override. Horizons come from the registry spec (smoke mode shrinks
/// them via [`ScenarioSpec::smoke`]). The `sparse-wall` and `lane-batch`
/// pairs each run the *same* workload under two engines, so every
/// `BENCH_*.json` records the skip-ahead and bit-parallel speedups next
/// to their exact baselines. Editing this list invalidates cross-PR
/// comparisons — append, don't mutate.
const SUITE: &[SuiteEntry] = &[
    SuiteEntry {
        name: "batch/64",
        scenario: "batch/64",
        seeds: 512,
        smoke_seeds: 4,
        execution: None,
    },
    SuiteEntry {
        name: "constant-jamming/0.25",
        scenario: "constant-jamming/0.25",
        seeds: 24,
        smoke_seeds: 2,
        execution: None,
    },
    SuiteEntry {
        name: "lowerbound/theorem13",
        scenario: "lowerbound/theorem13",
        seeds: 96,
        smoke_seeds: 4,
        execution: None,
    },
    SuiteEntry {
        name: "saturated/32",
        scenario: "saturated/32",
        seeds: 24,
        smoke_seeds: 2,
        execution: None,
    },
    SuiteEntry {
        name: "sparse-wall/exact",
        scenario: "sparse-wall/65536",
        seeds: 8,
        smoke_seeds: 2,
        execution: Some(Execution::Exact),
    },
    SuiteEntry {
        name: "sparse-wall/skip-ahead",
        scenario: "sparse-wall/65536",
        seeds: 8,
        smoke_seeds: 2,
        execution: Some(Execution::SkipAhead),
    },
    SuiteEntry {
        name: "sparse-batch/100000",
        scenario: "sparse-batch/100000",
        seeds: 2,
        smoke_seeds: 2,
        execution: None,
    },
    // The bit-parallel pair: one lane-eligible workload, scalar exact vs
    // 64 seeds per engine pass. Smoke mode keeps a full 64-seed block so
    // the lane path (not its scalar fallback) is what CI exercises.
    SuiteEntry {
        name: "lane-batch/exact",
        scenario: "lane-batch/256",
        seeds: 512,
        smoke_seeds: 64,
        execution: Some(Execution::Exact),
    },
    SuiteEntry {
        name: "lane-batch/bit-parallel",
        scenario: "lane-batch/256",
        seeds: 512,
        smoke_seeds: 64,
        execution: Some(Execution::BitParallel),
    },
];

struct SuiteEntry {
    name: &'static str,
    scenario: &'static str,
    seeds: u64,
    smoke_seeds: u64,
    execution: Option<Execution>,
}

impl SuiteEntry {
    /// The measurement spec: the registry scenario at suite scale, in
    /// aggregate record mode (perf measures the engine, not trace storage).
    fn spec(&self, smoke: bool) -> ScenarioSpec {
        let spec = lookup(self.scenario)
            .unwrap_or_else(|| panic!("pinned suite scenario `{}` must resolve", self.scenario));
        let spec = if smoke {
            spec.smoke().seeds(self.smoke_seeds).aggregate_only()
        } else {
            spec.seeds(self.seeds).aggregate_only()
        };
        match self.execution {
            Some(execution) => spec.execution(execution),
            None => spec,
        }
    }
}

struct Measurement {
    scenario: &'static str,
    seeds: u64,
    algos: Vec<String>,
    slots: u64,
    delivered: u64,
    wall_secs: f64,
    slots_per_sec: f64,
}

/// Timed passes per scenario; the best (minimum wall time) is reported, so
/// transient machine load does not masquerade as an engine regression.
const PASSES: usize = 3;

fn measure(entry: &SuiteEntry, smoke: bool) -> Measurement {
    let spec = entry.spec(smoke);
    let seeds = spec.seeds;
    let runner = ScenarioRunner::new(spec);
    let passes = if smoke { 1 } else { PASSES };
    let mut wall_secs = f64::INFINITY;
    let mut slots = 0u64;
    let mut delivered = 0u64;
    let mut algos = Vec::new();
    for _ in 0..passes {
        let start = Instant::now();
        let report = runner.run();
        let elapsed = start.elapsed().as_secs_f64();
        wall_secs = wall_secs.min(elapsed);
        slots = 0;
        delivered = 0;
        algos.clear();
        for algo in &report.algos {
            algos.push(algo.name.clone());
            for out in &algo.outcomes {
                slots += out.slots;
                delivered += out.trace.total_successes();
            }
        }
    }
    Measurement {
        scenario: entry.name,
        seeds,
        algos,
        slots,
        delivered,
        wall_secs,
        slots_per_sec: if wall_secs > 0.0 {
            slots as f64 / wall_secs
        } else {
            0.0
        },
    }
}

/// Civil date from a Unix day count (Howard Hinnant's `civil_from_days`).
fn civil_from_days(days: i64) -> (i64, u32, u32) {
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn today_utc() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0);
    let (y, m, d) = civil_from_days(secs.div_euclid(86_400));
    format!("{y:04}-{m:02}-{d:02}")
}

fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn render_report(measurements: &[Measurement], smoke: bool, label: &str, date: &str) -> String {
    let total_slots: u64 = measurements.iter().map(|m| m.slots).sum();
    let total_wall: f64 = measurements.iter().map(|m| m.wall_secs).sum();
    let scenarios = measurements
        .iter()
        .map(|m| {
            obj(vec![
                ("name", Json::Str(m.scenario.to_string())),
                ("seeds", Json::Num(m.seeds as f64)),
                (
                    "algos",
                    Json::Arr(m.algos.iter().map(|a| Json::Str(a.clone())).collect()),
                ),
                ("slots", Json::Num(m.slots as f64)),
                ("delivered", Json::Num(m.delivered as f64)),
                ("wall_secs", Json::Num(m.wall_secs)),
                ("slots_per_sec", Json::Num(m.slots_per_sec)),
            ])
        })
        .collect();
    obj(vec![
        ("schema", Json::Str("contention-bench/perf-v1".to_string())),
        ("date", Json::Str(date.to_string())),
        ("label", Json::Str(label.to_string())),
        (
            "mode",
            Json::Str(if smoke { "smoke" } else { "full" }.into()),
        ),
        ("passes", Json::Num(if smoke { 1.0 } else { PASSES as f64 })),
        (
            "threads",
            Json::Num(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1) as f64,
            ),
        ),
        ("scenarios", Json::Arr(scenarios)),
        (
            "totals",
            obj(vec![
                ("slots", Json::Num(total_slots as f64)),
                ("wall_secs", Json::Num(total_wall)),
                (
                    "slots_per_sec",
                    Json::Num(if total_wall > 0.0 {
                        total_slots as f64 / total_wall
                    } else {
                        0.0
                    }),
                ),
            ]),
        ),
    ])
    .render()
}

/// The newest committed `BENCH_*.json` in the current directory (dates
/// are zero-padded ISO, so the lexicographically greatest name is the
/// newest).
fn newest_baseline() -> Option<String> {
    let mut names: Vec<String> = std::fs::read_dir(".")
        .ok()?
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    names.pop()
}

/// Load and validate a baseline report *before* any measurement runs:
/// the file must exist, parse, and carry the same mode as this run —
/// all pure file I/O, so a typo'd path or mode mismatch fails in
/// milliseconds instead of after a full measurement suite.
fn load_baseline(path: &str, smoke: bool) -> Json {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(1);
        }
    };
    let baseline = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cannot parse baseline {path}: {e}");
            std::process::exit(1);
        }
    };
    let mode = baseline
        .get("mode")
        .and_then(|m| m.as_str().map(str::to_string))
        .unwrap_or_default();
    let run_mode = if smoke { "smoke" } else { "full" };
    if mode != run_mode {
        eprintln!(
            "baseline {path} was measured in `{mode}` mode but this run is `{run_mode}`; \
             slots/s are not comparable (re-run without the mismatch or pick another --baseline)"
        );
        std::process::exit(1);
    }
    baseline
}

/// Compare fresh measurements against a validated baseline report. Fails
/// (exit 1) when any pinned scenario's slots/s drops more than
/// `tolerance` below the baseline. Scenarios absent from the baseline
/// (suite additions) are reported but never fail — append, don't mutate.
fn check_against_baseline(
    measurements: &[Measurement],
    baseline: &Json,
    path: &str,
    tolerance: f64,
) {
    let baseline_rate = |name: &str| -> Option<f64> {
        baseline
            .get("scenarios")
            .ok()?
            .as_arr()
            .ok()?
            .iter()
            .find(|s| {
                s.get("name")
                    .and_then(|n| n.as_str())
                    .is_ok_and(|n| n == name)
            })?
            .get("slots_per_sec")
            .ok()?
            .as_f64()
            .ok()
    };

    println!(
        "\nchecking against {path} (tolerance {:.0}%):",
        tolerance * 100.0
    );
    let mut regressions = Vec::new();
    let mut deltas = Vec::new();
    for m in measurements {
        match baseline_rate(m.scenario) {
            Some(base) => {
                let ratio = if base > 0.0 {
                    m.slots_per_sec / base
                } else {
                    1.0
                };
                let delta = (ratio - 1.0) * 100.0;
                deltas.push(delta);
                let verdict = if ratio + tolerance < 1.0 {
                    regressions.push(m.scenario);
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!(
                    "  {:<24} {:>12.0} vs {:>12.0} slots/sec  ({:>+7.1}%)  {}",
                    m.scenario, m.slots_per_sec, base, delta, verdict
                );
            }
            None => println!(
                "  {:<24} {:>12.0} slots/sec  (no baseline entry — new scenario)",
                m.scenario, m.slots_per_sec
            ),
        }
    }
    if regressions.is_empty() {
        // Per-scenario deltas are printed above on success too; add the
        // aggregate so a passing run still quantifies its drift.
        let mean = if deltas.is_empty() {
            0.0
        } else {
            deltas.iter().sum::<f64>() / deltas.len() as f64
        };
        println!(
            "perf check passed: no scenario regressed beyond tolerance \
             (mean delta {mean:+.1}% over {} compared scenario(s))",
            deltas.len()
        );
    } else {
        eprintln!(
            "perf check FAILED: {} scenario(s) regressed more than {:.0}%: {}",
            regressions.len(),
            tolerance * 100.0,
            regressions.join(", ")
        );
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let grab = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    // `--filter SUBSTR` runs the suite subset whose names contain the
    // substring (cargo-test ergonomics); check mode compares only the
    // measured subset.
    let filter = grab("--filter");
    let label = grab("--label").unwrap_or_else(|| "default".to_string());
    let date = today_utc();
    let out_path = grab("--out").unwrap_or_else(|| format!("BENCH_{date}.json"));
    let tolerance = match grab("--tolerance") {
        None => 0.10,
        Some(t) => match t.parse::<f64>() {
            // A tolerance of 1.0+ would make the gate unfailable; a
            // percentage like `--tolerance 10` is almost certainly meant
            // as a fraction. Reject instead of silently passing.
            Ok(v) if v > 0.0 && v < 1.0 => v,
            Ok(v) => {
                eprintln!("--tolerance {v} is not a fraction in (0, 1) — e.g. 0.10 for 10%");
                std::process::exit(1);
            }
            Err(_) => {
                eprintln!("--tolerance `{t}` is not a number — e.g. 0.10 for 10%");
                std::process::exit(1);
            }
        },
    };

    // Resolve and validate the baseline up front in check mode: pure
    // file I/O that must not wait for (or waste) a measurement run.
    let baseline = if check {
        let path = grab("--baseline").or_else(newest_baseline);
        let Some(path) = path else {
            eprintln!("--check needs a committed BENCH_*.json (or --baseline FILE)");
            std::process::exit(1);
        };
        Some((load_baseline(&path, smoke), path))
    } else {
        None
    };

    let selected: Vec<&SuiteEntry> = SUITE
        .iter()
        .filter(|e| filter.as_deref().is_none_or(|f| e.name.contains(f)))
        .collect();
    if selected.is_empty() {
        let pattern = filter.unwrap_or_default();
        eprintln!(
            "--filter `{pattern}` matches no suite entry (suite: {})",
            SUITE.iter().map(|e| e.name).collect::<Vec<_>>().join(", ")
        );
        // Same UX as unknown registry names: exit 2 with suggestions.
        let suggestions = contention_bench::closest_matches(&pattern, SUITE.iter().map(|e| e.name));
        if !suggestions.is_empty() {
            eprintln!("did you mean:");
            for s in suggestions {
                eprintln!("  {s}");
            }
        }
        std::process::exit(2);
    }
    println!(
        "perf suite ({} mode, {} scenario(s))…",
        if smoke { "smoke" } else { "full" },
        selected.len()
    );
    let mut measurements = Vec::new();
    for entry in selected {
        let m = measure(entry, smoke);
        println!(
            "  {:<24} {:>12} slots  {:>8.3}s  {:>12.0} slots/sec",
            m.scenario, m.slots, m.wall_secs, m.slots_per_sec
        );
        measurements.push(m);
    }

    if let Some((baseline, path)) = baseline {
        // Check mode compares and gates; it never writes a report, so a
        // failing CI run cannot clobber the committed baseline.
        check_against_baseline(&measurements, &baseline, &path, tolerance);
        return;
    }

    if filter.is_some() && grab("--out").is_none() {
        // A filtered run covers a suite subset; writing it under the
        // default BENCH_<date>.json name would masquerade as a full
        // baseline. Require an explicit --out for that.
        println!("filtered run: not writing a BENCH file (pass --out FILE to keep it)");
        return;
    }

    let json = render_report(&measurements, smoke, &label, &date);
    if let Err(e) = std::fs::write(&out_path, json + "\n") {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
