//! Minimal SIGINT hook for binaries, dependency-free.
//!
//! The bench *library* forbids `unsafe`, and the container has no `libc`
//! crate, so the one `extern` call lives here in a binary-only helper
//! (files under `src/bin/helpers/` are not binaries; binaries include
//! this module via `#[path]`). The handler only stores to an atomic —
//! the async-signal-safe subset — and re-arms the default disposition,
//! so a second Ctrl-C kills the process the usual way.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

const SIGINT: i32 = 2;
const SIG_DFL: usize = 0;

static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_sigint(_: i32) {
    if let Some(flag) = FLAG.get() {
        flag.store(true, Ordering::SeqCst);
    }
    unsafe {
        signal(SIGINT, SIG_DFL);
    }
}

/// Install the handler and return the flag it raises. The first SIGINT
/// sets the flag (callers drain gracefully and exit 130); the second
/// falls through to the default disposition and kills the process.
pub fn install() -> Arc<AtomicBool> {
    let flag = FLAG
        .get_or_init(|| Arc::new(AtomicBool::new(false)))
        .clone();
    unsafe {
        signal(SIGINT, on_sigint as *const () as usize);
    }
    flag
}
