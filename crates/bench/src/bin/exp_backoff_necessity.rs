//! **E5 — why the adaptive `backoff` subroutine is necessary
//! (Theorem 4.2 / Lemma 4.1 mechanism).**
//!
//! The lower-bound proofs exploit a dilemma: a lone node must keep its
//! sending probability high (else jamming stalls it), but a crowd must keep
//! it low (else contention stalls everyone). Non-adaptive schedules cannot
//! do both; the paper's stage-based `(f/a)`-backoff can.
//!
//! This experiment measures both horns:
//!
//! * **Recovery** — the registry's `front-loaded/J` scenario: a single node
//!   arrives at slot 1 and Eve jams the first `J` slots. How long after the
//!   jamming stops until the node delivers? Monotone schedules have decayed
//!   to `p ≈ 1/J`, paying `Θ(J)` extra; `(f/a)`-backoff still sends
//!   `f(L) ≈ log L` times per stage, paying only `Θ(J / log J)`.
//! * **Crowd** — the `batch/n` scenario without jamming. Time to *first*
//!   success. Schedules that stay aggressive (to survive jamming) collide
//!   forever; the backoff's stage structure thins out correctly.

use contention_analysis::{fnum, Figure, Series, Summary, Table};
use contention_bench::scenario::{
    registry, AlgoSpec, BaselineSpec, GSpec, ScenarioRunner, ScenarioSpec,
};
use contention_bench::ExpArgs;

/// First-success slot of a trace, if any.
fn first_success(trace: &contention_sim::Trace) -> Option<u64> {
    trace.departures().first().map(|d| d.departure_slot)
}

/// The jam-wall recovery scenario — the registry's `front-loaded/J`.
fn recovery_scenario(j: u64, seeds: u64) -> ScenarioSpec {
    registry::lookup(&format!("front-loaded/{j}"))
        .expect("front-loaded is a registry family")
        .seeds(seeds)
}

fn main() {
    let args = ExpArgs::from_env();
    let max_pow = if args.quick { 10 } else { 14 };
    let min_pow = 6;

    let algos = [
        AlgoSpec::Baseline(BaselineSpec::BinaryExponential),
        AlgoSpec::Baseline(BaselineSpec::SmoothedBeb),
        AlgoSpec::Baseline(BaselineSpec::Polynomial(2.0)),
        AlgoSpec::Baseline(BaselineSpec::Sawtooth),
        AlgoSpec::Baseline(BaselineSpec::FBackoff(GSpec::Constant(2.0))),
        AlgoSpec::cjz_constant_jamming(),
    ];

    println!("E5a: single node, first J slots jammed — recovery time after the jam ends");
    println!("J = 2^{min_pow}..2^{max_pow}, seeds = {}\n", args.seeds);

    let mut table = Table::new({
        let mut h = vec!["J".to_string()];
        h.extend(algos.iter().map(|a| a.name()));
        h
    })
    .with_title("E5a: mean recovery slots (first success slot − J)");

    let mut fig = Figure::new("E5a: recovery vs jam prefix J", "J", "recovery slots");
    let mut recovery: Vec<Vec<f64>> = vec![Vec::new(); algos.len()];

    for p in min_pow..=max_pow {
        let j = 1u64 << p;
        let runner = ScenarioRunner::new(recovery_scenario(j, args.seeds));
        let mut row = vec![format!("2^{p}")];
        for (ai, algo) in algos.iter().enumerate() {
            let recs = runner.collect(algo, |_seed, out| {
                match first_success(&out.trace) {
                    Some(s) => (s.saturating_sub(j)) as f64,
                    // Never succeeded within the generous horizon: censor at
                    // the horizon (pessimistic for the algorithm).
                    None => (64 * j) as f64,
                }
            });
            let s = Summary::of(&recs).unwrap();
            row.push(fnum(s.mean).to_string());
            recovery[ai].push(s.mean);
        }
        table.row(row);
    }
    println!("{}", table.render());

    for (ai, algo) in algos.iter().enumerate() {
        let mut s = Series::new(algo.name());
        for (idx, p) in (min_pow..=max_pow).enumerate() {
            s.push((1u64 << p) as f64, recovery[ai][idx]);
        }
        fig.add(s);
    }
    println!("{}", fig.to_ascii(72, 16));
    if args.csv {
        println!("--- CSV ---\n{}", fig.to_csv());
    }

    // Verdict for E5a: at the largest J, adaptive backoff recovers at
    // least 2x faster than monotone smoothed-beb.
    let last = recovery[0].len() - 1;
    let beb_rec = recovery[1][last]; // smoothed-beb
    let fb_rec = recovery[4][last]; // f-backoff
    let cjz_rec = recovery[5][last]; // cjz
    println!(
        "E5a verdict: f-backoff ({}) and cjz ({}) recover faster than smoothed-beb ({}): {}",
        fnum(fb_rec),
        fnum(cjz_rec),
        fnum(beb_rec),
        if fb_rec < beb_rec / 2.0 && cjz_rec < beb_rec / 2.0 {
            "PASS"
        } else {
            "FAIL"
        }
    );

    // E5b: the other horn — a crowd arrives at once, time to first success.
    println!("\nE5b: n nodes arrive together, no jamming — slots to FIRST success");
    let ns = [16u32, 64, 256, if args.quick { 512 } else { 2048 }];
    let mut crowd_table = Table::new({
        let mut h = vec!["n".to_string()];
        h.extend(algos.iter().map(|a| a.name()));
        h
    })
    .with_title("E5b: mean slots to first success");
    let mut worst_first: Vec<f64> = vec![0.0; algos.len()];
    for &n in &ns {
        let runner = ScenarioRunner::new(
            ScenarioSpec::batch(n, 0.0)
                .until_drained(4_000_000)
                .seeds(args.seeds),
        );
        let mut row = vec![format!("{n}")];
        for (ai, algo) in algos.iter().enumerate() {
            let vals = runner.collect(algo, |_seed, out| match first_success(&out.trace) {
                Some(s) => s as f64,
                None => 4_000_000.0,
            });
            let s = Summary::of(&vals).unwrap();
            row.push(fnum(s.mean));
            worst_first[ai] = worst_first[ai].max(s.mean);
        }
        crowd_table.row(row);
    }
    println!("{}", crowd_table.render());

    // Verdict for E5b: cjz achieves first success within O(n) even for the
    // largest crowd; aggressive constants would blow up instead.
    let n_max = f64::from(*ns.last().unwrap());
    let cjz_first = worst_first[algos.len() - 1];
    println!(
        "E5b verdict: cjz first success within 8·n for n = {}: {} ({} slots)",
        n_max,
        if cjz_first <= 8.0 * n_max {
            "PASS"
        } else {
            "FAIL"
        },
        fnum(cjz_first)
    );
    println!(
        "(The dilemma: monotone schedules lose horn 1 (recovery), aggressive ones lose \
         horn 2 (crowding); the stage-based backoff handles both — Theorem 4.2's message.)"
    );
}
