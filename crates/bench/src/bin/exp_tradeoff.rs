//! **E1 — the trade-off table (Theorem 1.2).**
//!
//! For each admissible jamming-tolerance function `g` — constant, `log x`,
//! `log² x`, `2^√log x` — run the protocol tuned for that `g` against an
//! adversary driven exactly at the Definition 1.1 budget
//! (`n_t ≲ t/(4f(t))` arrivals, `d_t ≲ t/(4g(t))` jams), and measure
//!
//! ```text
//! ratio(t) = a_t / (n_t·f(t) + d_t·g(t))
//! ```
//!
//! over every prefix. Theorem 1.2 predicts the worst ratio stays bounded by
//! a constant *uniformly in `t` and in `g`* — that bounded column is the
//! reproduced "table". (Absolute constants are implementation-calibrated;
//! the paper proves existence, not values.)
//!
//! The workload is the registry's `saturated-budgeted/<g>` family.

use contention_analysis::{fnum, Figure, Series, Summary, Table};
use contention_bench::scenario::{
    AlgoSpec, ArrivalSpec, BudgetSpec, GSpec, JammingSpec, ParamsSpec, ScenarioRunner, ScenarioSpec,
};
use contention_bench::ExpArgs;
use contention_core::ThroughputVerifier;

struct GCase {
    label: &'static str,
    g: GSpec,
    jam_rate: f64,
}

fn main() {
    let args = ExpArgs::from_env();
    let horizon = args.horizon.unwrap_or(args.scaled(1 << 16, 1 << 11));
    let cases = [
        GCase {
            label: "const",
            g: GSpec::Constant(2.0),
            jam_rate: 0.4,
        },
        GCase {
            label: "log",
            g: GSpec::Log,
            jam_rate: 0.25,
        },
        GCase {
            label: "log2",
            g: GSpec::PolyLog(2),
            jam_rate: 0.15,
        },
        GCase {
            label: "expsqrt",
            g: GSpec::ExpSqrtLog(1.0),
            jam_rate: 0.1,
        },
    ];

    println!("E1: (f,g)-throughput at the critical budget (Theorem 1.2)");
    println!("horizon t = {horizon}, seeds = {}\n", args.seeds);

    let mut table = Table::new([
        "g(x)",
        "f(t)",
        "n_t",
        "d_t",
        "a_t",
        "budget",
        "max ratio",
        "ratio@T",
    ])
    .with_title("E1: worst-prefix ratio a_t / (n_t f(t) + d_t g(t))");

    let mut fig = Figure::new(
        "E1: ratio(t) per g (mean over seeds)",
        "t",
        "a_t / budget_t",
    );

    let mut all_bounded = true;
    for case in &cases {
        let params_spec = ParamsSpec::new(case.g.clone());
        let params = params_spec.build();
        let f = params.f();
        let g = params.g().clone();
        let algo = AlgoSpec::Cjz(params_spec.clone());

        // The registry's saturated-budgeted family: saturated arrivals and
        // random jamming, clamped to the critical (f,g) budget curves.
        let spec = ScenarioSpec::new(format!("saturated-budgeted/{}", case.label))
            .algo(algo.clone())
            .arrivals(ArrivalSpec::saturated())
            .jamming(JammingSpec::random(case.jam_rate))
            .budget(BudgetSpec::critical(params_spec.clone(), 4.0))
            .fixed_horizon(horizon)
            .seeds(args.seeds);
        let runner = ScenarioRunner::new(spec);

        let runs = runner.collect(&algo, |_seed, out| {
            let verifier = ThroughputVerifier::for_params(&params);
            let report = verifier.check(&out.trace, f64::INFINITY);
            let cum = out.trace.cumulative();
            (
                report,
                cum.arrivals(horizon),
                cum.jammed(horizon),
                cum.active(horizon),
            )
        });

        let max_ratios: Vec<f64> = runs.iter().map(|r| r.0.max_ratio).collect();
        let final_ratios: Vec<f64> = runs
            .iter()
            .map(|r| r.0.samples.last().map(|s| s.1).unwrap_or(0.0))
            .collect();
        let n_t = Summary::of(&runs.iter().map(|r| r.1 as f64).collect::<Vec<_>>()).unwrap();
        let d_t = Summary::of(&runs.iter().map(|r| r.2 as f64).collect::<Vec<_>>()).unwrap();
        let a_t = Summary::of(&runs.iter().map(|r| r.3 as f64).collect::<Vec<_>>()).unwrap();
        let max_r = Summary::of(&max_ratios).unwrap();
        let fin_r = Summary::of(&final_ratios).unwrap();
        let budget = n_t.mean * f.at(horizon) + d_t.mean * g.at(horizon);

        table.row([
            g.label(),
            fnum(f.at(horizon)),
            fnum(n_t.mean),
            fnum(d_t.mean),
            fnum(a_t.mean),
            fnum(budget),
            format!("{} ± {}", fnum(max_r.mean), fnum(max_r.ci95())),
            fnum(fin_r.mean),
        ]);

        // Ratio series (mean over seeds at shared dyadic t's).
        let mut series = Series::new(g.label());
        if let Some(first) = runs.first() {
            for (idx, &(t, _)) in first.0.samples.iter().enumerate() {
                let mut vals = Vec::new();
                for r in &runs {
                    if let Some(&(_, ratio)) = r.0.samples.get(idx) {
                        if ratio.is_finite() {
                            vals.push(ratio);
                        }
                    }
                }
                if let Some(s) = Summary::of(&vals) {
                    series.push(t as f64, s.mean);
                }
            }
        }
        fig.add(series);

        // "Bounded" acceptance: the worst prefix ratio should not blow up;
        // the late-run (asymptotic) ratio should be modest.
        if fin_r.mean > 8.0 {
            all_bounded = false;
        }
    }

    println!("{}", table.render());
    println!("{}", fig.to_ascii(72, 18));
    if args.csv {
        println!("--- CSV ---\n{}", fig.to_csv());
    }
    println!(
        "verdict: late-run ratios bounded across the g spectrum: {}",
        if all_bounded { "PASS" } else { "FAIL" }
    );
    println!(
        "(Theorem 1.2 shape: ratio(t) settles to an O(1) band for every admissible g; \
         early-t spikes are the pre-asymptotic regime absorbed by the paper's constants.)"
    );
}
