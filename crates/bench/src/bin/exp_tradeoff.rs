//! **E1 — the trade-off table (Theorem 1.2).**
//!
//! Thin wrapper over the registry campaign `tradeoff`: for each admissible
//! jamming-tolerance function `g` — constant, `log x`, `log² x`,
//! `2^√log x` — the protocol tuned for that `g` runs against an adversary
//! driven at the Definition 1.1 budget, and the worst-case ratio
//! `a_t / (n_t·f(t) + d_t·g(t))` must stay bounded by a constant
//! *uniformly in `g`* (absolute constants are implementation-calibrated;
//! the paper proves existence, not values). The same campaign renders the
//! trade-off section of RESULTS.md (`campaign report`).

use contention_analysis::fnum;
use contention_bench::campaign::{self, tradeoff_ratios, CampaignRunner};
use contention_bench::ExpArgs;

fn main() {
    let args = ExpArgs::from_env();
    let mut sweep = campaign::lookup("tradeoff").expect("registry campaign");
    if args.quick {
        sweep = sweep.smoke();
    }
    sweep = sweep.seeds(args.seeds);
    if let Some(t) = args.horizon {
        sweep.base = sweep.base.fixed_horizon(t);
    }

    println!("E1: (f,g)-throughput at the critical budget (Theorem 1.2)");
    println!(
        "horizon t = {}, seeds = {}\n",
        sweep.base.horizon.cap(),
        sweep.base.seeds
    );
    let result = CampaignRunner::new(sweep).run();
    print!("{}", campaign::render_section(&result));
    if args.csv {
        println!("\n--- CSV ---\n{}", campaign::to_csv(&result));
    }

    // "Bounded" acceptance: the late-run ratio must not blow up for any g.
    let ratios = tradeoff_ratios(&result);
    let worst = ratios.iter().cloned().fold(0.0, f64::max);
    println!(
        "\nverdict: ratios bounded across the g spectrum (worst {}): {}",
        fnum(worst),
        if worst <= 8.0 { "PASS" } else { "FAIL" }
    );
}
