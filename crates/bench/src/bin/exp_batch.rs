//! **E3 — batch robustness: `Θ(n)` successes in `Θ(n)` slots despite
//! jamming.**
//!
//! Section 2's framework claims the truncated-backoff batch is "extremely
//! robust against jamming": if `n` nodes start simultaneously, then even
//! with a constant fraction of slots jammed, the first `Θ(n)` slots yield
//! `Θ(n)` successes (see also Scenario II in the appendix). The full
//! protocol should therefore:
//!
//! 1. deliver at least a constant fraction of a batch within `C·n` slots,
//!    for a constant `C` independent of `n`, at each jamming level; and
//! 2. drain the whole batch in `O(n·f(n))` slots (`n·log n` for the
//!    constant-`g` tuning — the extra `log` is the price of full drainage
//!    under worst-case-tuned parameters; `O(n)` for the `2^√log` tuning
//!    without jamming).

use contention_analysis::{best_fit, fnum, Figure, GrowthModel, Series, Summary, Table};
use contention_bench::{replicate, run_batch, AlgoSpec, ExpArgs};

fn main() {
    let args = ExpArgs::from_env();
    let max_pow = if args.quick { 9 } else { 13 };
    let min_pow = 6;
    let early_window_factor = 16u64; // "C·n" for the early-success check
    let jams = [0.0, 0.10, 0.25];

    println!("E3: batch of n, fraction of slots jammed at random");
    println!("n = 2^{min_pow}..2^{max_pow}, seeds = {}\n", args.seeds);

    let algo = AlgoSpec::cjz_constant_jamming();
    let mut drain_fig = Figure::new("E3: drain slots vs n", "n", "slots");

    for &jam in &jams {
        let mut table = Table::new([
            "n",
            "drain slots",
            "slots/(n·log2 n)",
            &format!("succ by {early_window_factor}n"),
            "early fraction",
        ])
        .with_title(format!("E3: jam = {jam}"));

        let mut drain_points: Vec<(f64, f64)> = Vec::new();
        let mut early_fractions: Vec<f64> = Vec::new();
        let mut series = Series::new(format!("jam={jam}"));

        for p in min_pow..=max_pow {
            let n = 1u32 << p;
            let outs = replicate(args.seeds, |seed| {
                let out = run_batch(&algo, n, jam, seed, 200_000_000);
                assert!(out.drained, "batch n={n} jam={jam} failed to drain");
                let cum = out.trace.cumulative();
                let early = cum.successes(early_window_factor * u64::from(n));
                (out.slots, early)
            });
            let drain = Summary::of(&outs.iter().map(|o| o.0 as f64).collect::<Vec<_>>()).unwrap();
            let early = Summary::of(&outs.iter().map(|o| o.1 as f64).collect::<Vec<_>>()).unwrap();
            let nf = f64::from(n);
            let early_frac = early.mean / nf;
            early_fractions.push(early_frac);
            table.row([
                format!("{n}"),
                format!("{} ± {}", fnum(drain.mean), fnum(drain.ci95())),
                fnum(drain.mean / (nf * nf.log2())),
                fnum(early.mean),
                fnum(early_frac),
            ]);
            drain_points.push((nf, drain.mean));
            series.push(nf, drain.mean);
        }
        println!("{}", table.render());

        let ranked = best_fit(&drain_points);
        println!(
            "  drain-time best fit at jam={jam}: {} (residual {})",
            ranked[0].model,
            fnum(ranked[0].rel_residual)
        );
        let nlogn_ok = ranked
            .iter()
            .position(|f| matches!(f.model, GrowthModel::LinearLog | GrowthModel::Linear))
            .map(|pos| pos <= 1)
            .unwrap_or(false);
        // "Θ(n) successes in Θ(n) slots": the fraction delivered within
        // C·n slots must stay bounded away from 0 as n grows — no
        // systematic decay (a vanishing-throughput algorithm would show
        // fraction → 0 like 1/log n or worse).
        let min_frac = early_fractions.iter().cloned().fold(f64::MAX, f64::min);
        let first = early_fractions.first().copied().unwrap_or(0.0);
        let last = early_fractions.last().copied().unwrap_or(0.0);
        let no_decay = min_frac >= 0.05 && last >= 0.4 * first;
        println!(
            "  early-window fraction bounded away from 0 across n: {} (min {}, first {}, last {})",
            if no_decay { "PASS" } else { "FAIL" },
            fnum(min_frac),
            fnum(first),
            fnum(last)
        );
        println!(
            "  drain growth ≈ n·log n (or better): {}\n",
            if nlogn_ok { "PASS" } else { "FAIL" }
        );
        drain_fig.add(series);
    }

    // Constant-throughput tuning without jamming: drain should be Θ(n).
    println!("E3b: g = 2^sqrt(log) tuning, no jamming (constant-throughput regime)");
    let algo_ct = AlgoSpec::cjz_constant_throughput();
    let mut pts: Vec<(f64, f64)> = Vec::new();
    let mut table = Table::new(["n", "drain slots", "slots/n"])
        .with_title("E3b: drain time, constant-throughput tuning");
    for p in min_pow..=max_pow {
        let n = 1u32 << p;
        let outs = replicate(args.seeds, |seed| {
            let out = run_batch(&algo_ct, n, 0.0, seed, 200_000_000);
            assert!(out.drained);
            out.slots
        });
        let drain = Summary::of(&outs.iter().map(|&s| s as f64).collect::<Vec<_>>()).unwrap();
        table.row([
            format!("{n}"),
            format!("{} ± {}", fnum(drain.mean), fnum(drain.ci95())),
            fnum(drain.mean / f64::from(n)),
        ]);
        pts.push((f64::from(n), drain.mean));
    }
    println!("{}", table.render());
    let ranked = best_fit(&pts);
    println!(
        "E3b drain best fit: {} (residual {})",
        ranked[0].model,
        fnum(ranked[0].rel_residual)
    );
    let linear_ok = ranked
        .iter()
        .position(|f| f.model == GrowthModel::Linear)
        .map(|pos| pos <= 1)
        .unwrap_or(false);
    println!(
        "E3b drain ≈ Θ(n): {}",
        if linear_ok { "PASS" } else { "FAIL" }
    );

    println!("\n{}", drain_fig.to_ascii(72, 16));
    if args.csv {
        println!("--- CSV ---\n{}", drain_fig.to_csv());
    }
}
