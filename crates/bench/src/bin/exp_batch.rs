//! **E3 — batch robustness: `Θ(n)` successes in `Θ(n)` slots despite
//! jamming.**
//!
//! Thin wrapper over the registry campaigns `batch-scaling` (worst-case
//! tuning, jam × n grid) and `batch-scaling-clean` (constant-throughput
//! tuning, clean channel). Per Section 2 / Scenario II the protocol must
//! (1) deliver a constant fraction of an `n`-batch within `C·n` slots at
//! every jamming level — checked at the dyadic checkpoint `16n` — and
//! (2) drain the whole batch in `O(n·log n)` slots (worst-case tuning),
//! or `Θ(n)` with the `2^√log` tuning on a clean channel.

use contention_analysis::{best_fit, fnum, GrowthModel, Table};
use contention_bench::campaign::{self, CampaignRunner, CellResult};
use contention_bench::ExpArgs;

/// Mean successes within the early window `16n` (the dyadic checkpoint
/// at `2^(p+4)`), over **all** seeds. The checkpoint only averages seeds
/// whose runs reached `16n`; seeds that drained earlier delivered the
/// whole batch by then, so they are folded back in at `n` — dropping
/// them would bias the fraction toward the slow seeds.
fn early_successes(cell: &CellResult, n: u32) -> f64 {
    let window = 16 * u64::from(n);
    match cell.checkpoints.iter().find(|c| c.t == window) {
        Some(c) => {
            let missing = (cell.seeds - c.seeds) as f64;
            (c.mean_successes * c.seeds as f64 + f64::from(n) * missing) / cell.seeds as f64
        }
        // Every seed drained before the window: the full batch landed.
        None => cell.mean_delivered,
    }
}

/// Render one jam group's table and return `(drain points, early fracs)`.
fn jam_group(cells: &[&CellResult], jam: &str) -> (Vec<(f64, f64)>, Vec<f64>) {
    let mut table = Table::new(["n", "drain slots", "slots/(n·log2 n)", "early fraction"])
        .with_title(format!("E3: jam = {jam}"));
    let mut points = Vec::new();
    let mut fracs = Vec::new();
    for cell in cells {
        let n: u32 = cell.coord("n").and_then(|v| v.parse().ok()).unwrap_or(0);
        let nf = f64::from(n);
        let frac = early_successes(cell, n) / nf;
        table.row([
            n.to_string(),
            fnum(cell.mean_slots),
            fnum(cell.mean_slots / (nf * nf.log2())),
            fnum(frac),
        ]);
        points.push((nf, cell.mean_slots));
        fracs.push(frac);
    }
    println!("{}", table.render());
    (points, fracs)
}

fn main() {
    let args = ExpArgs::from_env();
    let mut sweep = campaign::lookup("batch-scaling").expect("registry campaign");
    if args.quick {
        sweep = sweep.smoke();
    }
    sweep = sweep.seeds(args.seeds);
    println!(
        "E3: batch of n, fraction of slots jammed at random (seeds = {})\n",
        sweep.base.seeds
    );
    let result = CampaignRunner::new(sweep).run();

    // Group grid-ordered cells by the jam coordinate (first axis, slowest).
    let mut jams: Vec<&str> = Vec::new();
    for cell in &result.cells {
        let jam = cell.coord("jam").unwrap_or_default();
        if !jams.contains(&jam) {
            jams.push(jam);
        }
    }
    for jam in jams {
        let cells: Vec<&CellResult> = result
            .cells
            .iter()
            .filter(|c| c.coord("jam") == Some(jam))
            .collect();
        let (points, fracs) = jam_group(&cells, jam);
        assert!(
            cells.iter().all(|c| c.drained_frac == 1.0),
            "batch at jam={jam} failed to drain"
        );
        let ranked = best_fit(&points);
        let nlogn_ok = ranked
            .iter()
            .position(|f| matches!(f.model, GrowthModel::LinearLog | GrowthModel::Linear))
            .map(|pos| pos <= 1)
            .unwrap_or(false);
        // "Θ(n) successes in Θ(n) slots": the early-window fraction must
        // stay bounded away from 0 as n grows.
        let min_frac = fracs.iter().cloned().fold(f64::MAX, f64::min);
        let (first, last) = (
            fracs.first().copied().unwrap_or(0.0),
            fracs.last().copied().unwrap_or(0.0),
        );
        let no_decay = min_frac >= 0.05 && last >= 0.4 * first;
        println!(
            "  early fraction bounded away from 0: {} (min {})   |   drain ≈ n·log n or better: {} (best: {})\n",
            if no_decay { "PASS" } else { "FAIL" },
            fnum(min_frac),
            if nlogn_ok { "PASS" } else { "FAIL" },
            ranked[0].model
        );
    }
    if args.csv {
        println!("--- CSV ---\n{}", campaign::to_csv(&result));
    }

    // E3b: constant-throughput tuning on a clean channel drains in Θ(n).
    let mut clean = campaign::lookup("batch-scaling-clean").expect("registry campaign");
    if args.quick {
        clean = clean.smoke();
    }
    clean = clean.seeds(args.seeds);
    println!("E3b: g = 2^sqrt(log) tuning, no jamming (constant-throughput regime)");
    let result = CampaignRunner::new(clean).run();
    let mut table = Table::new(["n", "drain slots", "slots/n"])
        .with_title("E3b: drain time, constant-throughput tuning");
    let mut pts = Vec::new();
    for cell in &result.cells {
        let n = cell.coord("n").unwrap_or_default().to_string();
        let nf: f64 = n.parse().unwrap_or(0.0);
        table.row([n, fnum(cell.mean_slots), fnum(cell.mean_slots / nf)]);
        pts.push((nf, cell.mean_slots));
    }
    println!("{}", table.render());
    let ranked = best_fit(&pts);
    let linear_ok = ranked
        .iter()
        .position(|f| f.model == GrowthModel::Linear)
        .map(|pos| pos <= 1)
        .unwrap_or(false);
    println!(
        "E3b drain ≈ Θ(n) (best: {}): {}",
        ranked[0].model,
        if linear_ok { "PASS" } else { "FAIL" }
    );
}
