//! **E11 — the lower-bound mechanism: forced channel accesses
//! (Theorem 1.3).**
//!
//! Thin wrapper over two registry campaigns:
//!
//! * `lowerbound/theorem13` (E11a) — a single node under the Theorem 1.3
//!   script; its channel accesses before first success must grow
//!   ≈ `log² t`, matching the forced budget (tightness from the algorithm
//!   side);
//! * `lowerbound/lemma41-flood` (E11b) — the Lemma 4.1 flood against
//!   algorithms that overspend (constant-probability ALOHA): the
//!   adversary converts aggression into zero throughput while the
//!   protocol's thinning backoff survives.

use contention_analysis::{best_fit, fnum, GrowthModel, Table};
use contention_bench::campaign::{self, CampaignRunner};
use contention_bench::ExpArgs;

fn main() {
    let args = ExpArgs::from_env();

    // E11a: forced accesses vs horizon. Quick mode keeps 5 horizon points
    // (2^8..2^12) rather than the generic 2-point smoke truncation: the
    // growth-model fit below needs enough points to rank models.
    let mut sweep = campaign::lookup("lowerbound/theorem13").expect("registry campaign");
    if args.quick {
        sweep.axes[0].points.truncate(5);
    }
    sweep = sweep.seeds(args.seeds);
    println!("E11a: broadcasts before first success under the Theorem 1.3 adversary\n");
    let result = CampaignRunner::new(sweep).run();
    print!("{}", campaign::render_section(&result));
    if args.csv {
        println!("\n--- CSV ---\n{}", campaign::to_csv(&result));
    }

    let points: Vec<(f64, f64)> = result
        .cells
        .iter()
        .map(|c| {
            let t = c.spec.horizon.cap() / 4; // Horizon axis gives 4t drain headroom.
            (t as f64, c.mean_first_access.unwrap_or(0.0).max(1.0))
        })
        .collect();
    let ranked = best_fit(&points);
    let polylog_best = matches!(
        ranked[0].model,
        GrowthModel::LogSq | GrowthModel::Log | GrowthModel::Constant
    );
    println!(
        "\naccesses grow polylogarithmically (best: {}): {}",
        ranked[0].model,
        if polylog_best { "PASS" } else { "FAIL" }
    );
    println!(
        "(Theorem 1.3 forces Ω(log²t/log²g) accesses; the algorithm spends Θ(that) — \
         the matching upper bound is what makes the trade-off tight.)\n"
    );

    // E11b: the flood that punishes overspending.
    let mut flood = campaign::lookup("lowerbound/lemma41-flood").expect("registry campaign");
    if args.quick {
        flood = flood.smoke();
    }
    flood = flood.seeds(args.seeds);
    println!("E11b: Lemma 4.1 flood vs an aggressive schedule");
    let result = CampaignRunner::new(flood).run();
    let mut table = Table::new(["algorithm", "successes in t", "first success"])
        .with_title("E11b: the Lemma 4.1 flood");
    for cell in &result.cells {
        table.row([
            cell.algo_name.clone(),
            fnum(cell.mean_delivered),
            cell.mean_first_success_slot
                .map(fnum)
                .unwrap_or_else(|| "never".to_string()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(Aggressive constant-probability senders drown in the flood — the contention \
         horn of the lower-bound dilemma; the protocol's thinning backoff survives it.)"
    );
}
