//! **E11 — the lower-bound mechanism: forced channel accesses
//! (Theorem 1.3).**
//!
//! Theorem 1.3's proof shows that any algorithm achieving the optimal
//! trade-off must, against the prefix-plus-random jamming adversary, make
//! `Ω(log² t / log² g(t))` broadcasts before its first success — that
//! spending is *forced*, and Lemma 4.1 turns overspending into a
//! throughput violation. Impossibility theorems quantify over all
//! algorithms and cannot be "run"; what can be run is the mechanism (the
//! registry's `lowerbound/*` scenarios):
//!
//! * **E11a** — a single node under the `lowerbound/theorem13` script:
//!   count its broadcasts before first success as the horizon grows. For
//!   the paper's algorithm (g constant) the count should grow ≈ `log² t` —
//!   matching the lower bound, i.e. the algorithm spends exactly the
//!   forced budget (tightness from the algorithm side).
//! * **E11b** — the `lowerbound/lemma41` flood against an algorithm that
//!   *overspends* (ALOHA, constant probability): no success appears in the
//!   whole horizon, demonstrating how the adversary converts aggression
//!   into zero throughput.

use contention_analysis::{best_fit, fnum, GrowthModel, Summary, Table};
use contention_bench::scenario::{
    AdversarySpec, AlgoSpec, BaselineSpec, ScenarioRunner, ScenarioSpec,
};
use contention_bench::ExpArgs;

fn main() {
    let args = ExpArgs::from_env();
    let max_pow = if args.quick { 12 } else { 16 };
    let min_pow = 8;

    println!("E11a: broadcasts before first success under the Theorem 1.3 adversary");
    println!(
        "horizon t = 2^{min_pow}..2^{max_pow}, seeds = {}\n",
        args.seeds
    );

    let algo = AlgoSpec::cjz_constant_jamming();
    let mut table = Table::new(["t", "accesses to 1st success", "log2^2(t)", "ratio"])
        .with_title("E11a: forced channel accesses (cjz, g const)");
    let mut points: Vec<(f64, f64)> = Vec::new();

    for p in min_pow..=max_pow {
        let t = 1u64 << p;
        let runner = ScenarioRunner::new(
            ScenarioSpec::new("lowerbound/theorem13")
                .algo(algo.clone())
                .adversary(AdversarySpec::Theorem13 {
                    horizon: t,
                    // g(t) = 2 for the constant tuning.
                    g_of_t: 2.0,
                })
                .until_drained(4 * t)
                .seeds(args.seeds),
        );
        let vals = runner.collect(&algo, |_seed, out| {
            // Accesses of the single node up to its delivery (or to the
            // horizon if censored).
            match out.trace.departures().first() {
                Some(d) => d.accesses as f64,
                None => out
                    .trace
                    .survivors()
                    .first()
                    .map(|s| s.accesses as f64)
                    .unwrap_or(0.0),
            }
        });
        let s = Summary::of(&vals).unwrap();
        let lg2 = (p as f64) * (p as f64);
        table.row([
            format!("2^{p}"),
            format!("{} ± {}", fnum(s.mean), fnum(s.ci95())),
            fnum(lg2),
            fnum(s.mean / lg2),
        ]);
        points.push((t as f64, s.mean.max(1.0)));
    }
    println!("{}", table.render());

    let ranked = best_fit(&points);
    let mut fit_table =
        Table::new(["model", "scale", "rel residual"]).with_title("E11a: access-growth fit");
    for f in &ranked {
        fit_table.row([f.model.to_string(), fnum(f.scale), fnum(f.rel_residual)]);
    }
    println!("{}", fit_table.render());
    let polylog_best = matches!(
        ranked[0].model,
        GrowthModel::LogSq | GrowthModel::Log | GrowthModel::Constant
    );
    println!(
        "accesses grow polylogarithmically (best: {}): {}",
        ranked[0].model,
        if polylog_best { "PASS" } else { "FAIL" }
    );
    println!(
        "(Theorem 1.3 forces Ω(log²t/log²g) accesses; the algorithm spends Θ(that) — \
         the matching upper bound is what makes the trade-off tight.)\n"
    );

    // E11b: the flood that punishes overspending.
    println!("E11b: Lemma 4.1 flood vs an aggressive schedule");
    let horizon = 1u64 << if args.quick { 11 } else { 14 };
    let mut flood_table = Table::new(["algorithm", "successes in t", "first success"])
        .with_title(format!("E11b: flood horizon t = {horizon}"));
    let flood = ScenarioRunner::new(
        ScenarioSpec::new("lowerbound/lemma41")
            .adversary(AdversarySpec::Lemma41 {
                horizon,
                batch_per_slot: 8,          // per slot for the first √t slots
                random_total: horizon / 64, // random-injected over [1, t]
            })
            .fixed_horizon(horizon)
            .seeds(args.seeds),
    );
    for algo in [
        AlgoSpec::Baseline(BaselineSpec::Aloha(0.3)),
        AlgoSpec::Baseline(BaselineSpec::Aloha(0.05)),
        AlgoSpec::cjz_constant_jamming(),
    ] {
        let runs = flood.collect(&algo, |_seed, out| {
            let first = out
                .trace
                .departures()
                .first()
                .map(|d| d.departure_slot as f64)
                .unwrap_or(f64::INFINITY);
            (out.trace.total_successes() as f64, first)
        });
        let succ = Summary::of(&runs.iter().map(|r| r.0).collect::<Vec<_>>()).unwrap();
        let firsts: Vec<f64> = runs.iter().map(|r| r.1).filter(|f| f.is_finite()).collect();
        let first = Summary::of(&firsts)
            .map(|s| fnum(s.mean))
            .unwrap_or_else(|| "never".to_string());
        flood_table.row([algo.name(), fnum(succ.mean), first]);
    }
    println!("{}", flood_table.render());
    println!(
        "(Aggressive constant-probability senders drown in the flood — the contention \
         horn of the lower-bound dilemma; the protocol's thinning backoff survives it.)"
    );
}
