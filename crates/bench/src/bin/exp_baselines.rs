//! **E7 — the baseline comparison table.**
//!
//! The introduction's motivating claims: plain backoff variants cannot
//! sustain good throughput under adversarial arrivals and jamming; the
//! paper's protocol can. This experiment pits the whole roster against four
//! registry scenarios and reports messages delivered within a fixed
//! horizon:
//!
//! * `batch` — one big batch, no jamming (the classical stress test);
//! * `batch+jam` — one big batch, 25% of slots jammed;
//! * `bursts+jam` — periodic adversarial bursts under 25% jamming;
//! * `reactive` — bursts + an adaptive jammer that jams right after every
//!   success (spite strategy, budgeted by its burst length).

use contention_analysis::{fnum, Summary, Table};
use contention_bench::scenario::{
    AlgoSpec, ArrivalSpec, BaselineSpec, JammingSpec, ScenarioRunner, ScenarioSpec,
};
use contention_bench::ExpArgs;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Scenario {
    Batch,
    BatchJam,
    BurstsJam,
    Reactive,
}

impl Scenario {
    fn name(self) -> &'static str {
        match self {
            Scenario::Batch => "batch",
            Scenario::BatchJam => "batch+jam",
            Scenario::BurstsJam => "bursts+jam",
            Scenario::Reactive => "reactive",
        }
    }

    fn spec(self, n: u32, horizon: u64) -> ScenarioSpec {
        let burst = (n / 16).max(1);
        let period = (horizon / 24).max(1);
        let bursts = ArrivalSpec::Bursty {
            period,
            phase: 1,
            size: burst,
            bursts: 16,
        };
        let spec = ScenarioSpec::new(self.name()).fixed_horizon(horizon);
        match self {
            Scenario::Batch => spec.arrivals(ArrivalSpec::batch(n)),
            Scenario::BatchJam => spec
                .arrivals(ArrivalSpec::batch(n))
                .jamming(JammingSpec::random(0.25)),
            Scenario::BurstsJam => spec.arrivals(bursts).jamming(JammingSpec::random(0.25)),
            Scenario::Reactive => spec
                .arrivals(bursts)
                .jamming(JammingSpec::Reactive { burst: 4 }),
        }
    }
}

fn main() {
    let args = ExpArgs::from_env();
    let n = if args.quick { 128 } else { 512 };
    // A tight horizon (24n) puts the table in the throughput-bound regime:
    // slow algorithms visibly fail to finish, while a full jammed drain
    // (≈ 1.9·n·log₂ n slots at 25% jamming, cf. E3) still fits.
    let horizon = args.horizon.unwrap_or(24 * u64::from(n));

    println!("E7: delivered messages within {horizon} slots (n = {n} per scenario)");
    println!("seeds = {}\n", args.seeds);

    let mut algos: Vec<AlgoSpec> = BaselineSpec::roster()
        .into_iter()
        .map(AlgoSpec::Baseline)
        .collect();
    algos.push(AlgoSpec::cjz_constant_jamming());

    let scenarios = [
        Scenario::Batch,
        Scenario::BatchJam,
        Scenario::BurstsJam,
        Scenario::Reactive,
    ];

    let mut table = Table::new({
        let mut h = vec!["algorithm".to_string()];
        h.extend(scenarios.iter().map(|s| s.name().to_string()));
        h.push("mean latency (batch+jam)".to_string());
        h
    })
    .with_title("E7: deliveries by scenario");

    // (algo, scenario) -> mean deliveries; also track cjz vs best baseline.
    let mut deliveries = vec![vec![0.0f64; scenarios.len()]; algos.len()];
    for (ai, algo) in algos.iter().enumerate() {
        let mut row = vec![algo.name()];
        let mut batchjam_latency = f64::NAN;
        for (si, sc) in scenarios.iter().enumerate() {
            let runner = ScenarioRunner::new(sc.spec(n, horizon).seeds(args.seeds));
            let runs = runner.collect(algo, |_seed, out| {
                let lat = out.trace.mean_latency().unwrap_or(f64::NAN);
                (out.trace.total_successes(), lat)
            });
            let succ = Summary::of(&runs.iter().map(|r| r.0 as f64).collect::<Vec<_>>()).unwrap();
            deliveries[ai][si] = succ.mean;
            row.push(fnum(succ.mean));
            if *sc == Scenario::BatchJam {
                let lats: Vec<f64> = runs.iter().map(|r| r.1).filter(|l| l.is_finite()).collect();
                batchjam_latency = Summary::of(&lats).map(|s| s.mean).unwrap_or(f64::NAN);
            }
        }
        row.push(fnum(batchjam_latency));
        table.row(row);
    }
    println!("{}", table.render());

    // Verdict: cjz delivers the full batch in every scenario and is within
    // a small factor of the best baseline everywhere.
    let cjz = deliveries.last().expect("cjz row");
    let full_everywhere = cjz.iter().all(|&d| d >= 0.95 * f64::from(n));
    let mut competitive = true;
    for (si, sc) in scenarios.iter().enumerate() {
        let best_baseline = deliveries[..deliveries.len() - 1]
            .iter()
            .map(|row| row[si])
            .fold(0.0, f64::max);
        if cjz[si] < 0.7 * best_baseline {
            competitive = false;
            println!(
                "  note: cjz {} vs best baseline {} in {}",
                fnum(cjz[si]),
                fnum(best_baseline),
                sc.name()
            );
        }
    }
    println!(
        "cjz delivers ≥95% of offered messages in all scenarios: {}",
        if full_everywhere { "PASS" } else { "FAIL" }
    );
    println!(
        "cjz within 0.7× of the best baseline everywhere: {}",
        if competitive { "PASS" } else { "FAIL" }
    );
    println!(
        "(The paper's protocol is built for worst-case guarantees; the table shows it \
         also stays competitive on average-case scenarios where baselines shine.)"
    );
}
