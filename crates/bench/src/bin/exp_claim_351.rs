//! **E4 — Claim 3.5.1: the `1/i`-batch cannot finish in `O(n)` slots.**
//!
//! Claim 3.5.1 shows that `h_data`-batch — the "send with probability `1/i`
//! in slot `i`" implementation of binary exponential backoff — cannot
//! deliver all `n` simultaneous messages in `O(n)` slots, w.h.p., even with
//! no jamming: the stragglers face vanishing probabilities. Indeed the
//! completion time is heavy-tailed (a lone node at slot `i` waits ~`i` for
//! its next attempt, so each "round" doubles the horizon with constant
//! probability), which is *itself* evidence for the claim; we therefore
//! report medians, censor runs at a generous slot cap, and fit the median
//! curve. The remark after the claim also asserts the flip side: a
//! constant fraction of the batch *is* delivered within `O(n)` slots, even
//! with a constant fraction of slots jammed. Both halves are measured:
//!
//! * median completion of `smoothed-beb` on a batch of `n` → super-linear,
//!   fits `c·n·log n` above `c·n`;
//! * fraction delivered by slot `4n` → bounded away from 0 at jam 0 and
//!   25%.

use contention_analysis::{best_fit, fnum, quantile, Figure, GrowthModel, Series, Table};
use contention_bench::scenario::BaselineSpec;
use contention_bench::{replicate, run_batch_light, AlgoSpec, ExpArgs};

fn main() {
    let args = ExpArgs::from_env();
    let max_pow = if args.quick { 9 } else { 12 };
    let min_pow = 5;

    println!("E4: Claim 3.5.1 — smoothed BEB (p_i = 1/i) on a batch of n");
    println!(
        "n = 2^{min_pow}..2^{max_pow}, seeds = {} (medians; heavy-tailed!)\n",
        args.seeds
    );

    let algo = AlgoSpec::Baseline(BaselineSpec::SmoothedBeb);

    let mut table = Table::new([
        "n",
        "median completion",
        "p90 completion",
        "med/n",
        "med/(n·ln n)",
        "frac by 4n (jam 0)",
        "frac by 4n (jam .25)",
        "censored",
    ])
    .with_title("E4: completion slots and early fraction");

    let mut completion: Vec<(f64, f64)> = Vec::new();
    let mut fig = Figure::new("E4: median completion vs n", "n", "slots");
    let mut meas = Series::new("median completion");
    let mut lin = Series::new("c*n (fit at smallest n)");
    let mut early_ok = true;
    let mut med_over_n: Vec<f64> = Vec::new();

    for p in min_pow..=max_pow {
        let n = 1u32 << p;
        let cap = 4096u64 * u64::from(n); // generous censoring cap
        let outs = replicate(args.seeds, |seed| {
            let clean = run_batch_light(&algo, n, 0.0, seed, cap);
            // Early deliveries read off the departure log (exact even
            // without per-slot records).
            let early_by = |out: &contention_bench::TrialOutcome, horizon: u64| {
                out.trace
                    .departures()
                    .iter()
                    .filter(|d| d.departure_slot <= horizon)
                    .count() as f64
                    / f64::from(n)
            };
            let early_clean = early_by(&clean, 4 * u64::from(n));
            let jammed = run_batch_light(&algo, n, 0.25, seed + 10_000, cap);
            let early_jam = early_by(&jammed, 4 * u64::from(n));
            (clean.slots as f64, early_clean, early_jam, !clean.drained)
        });
        let slots: Vec<f64> = outs.iter().map(|o| o.0).collect();
        let med = quantile(&slots, 0.5).unwrap();
        let p90 = quantile(&slots, 0.9).unwrap();
        let censored = outs.iter().filter(|o| o.3).count();
        let ec: Vec<f64> = outs.iter().map(|o| o.1).collect();
        let ej: Vec<f64> = outs.iter().map(|o| o.2).collect();
        let ec_med = quantile(&ec, 0.5).unwrap();
        let ej_med = quantile(&ej, 0.5).unwrap();
        let nf = f64::from(n);
        table.row([
            format!("{n}"),
            fnum(med),
            fnum(p90),
            fnum(med / nf),
            fnum(med / (nf * nf.ln())),
            fnum(ec_med),
            fnum(ej_med),
            format!("{censored}/{}", outs.len()),
        ]);
        completion.push((nf, med));
        med_over_n.push(med / nf);
        meas.push(nf, med);
        if ec_med < 0.1 || ej_med < 0.05 {
            early_ok = false;
        }
    }

    let c0 = completion.first().map(|&(n, s)| s / n).unwrap_or(1.0);
    for &(n, _) in &completion {
        lin.push(n, c0 * n);
    }
    println!("{}", table.render());

    let ranked = best_fit(&completion);
    let mut fit_table =
        Table::new(["model", "scale", "rel residual"]).with_title("E4: median-completion fit");
    for f in &ranked {
        fit_table.row([f.model.to_string(), fnum(f.scale), fnum(f.rel_residual)]);
    }
    println!("{}", fit_table.render());

    fig.add(meas);
    fig.add(lin);
    println!("{}", fig.to_ascii(72, 16));
    if args.csv {
        println!("--- CSV ---\n{}", fig.to_csv());
    }

    let nlogn_above_n = ranked
        .iter()
        .position(|f| f.model == GrowthModel::LinearLog)
        < ranked.iter().position(|f| f.model == GrowthModel::Linear);
    let first_ratio = med_over_n.first().copied().unwrap_or(0.0);
    let last_ratio = med_over_n.last().copied().unwrap_or(0.0);
    let superlinear = last_ratio > 1.5 * first_ratio;
    println!(
        "median completion ranked n·log n above n: {}",
        if nlogn_above_n { "PASS" } else { "FAIL" }
    );
    println!(
        "median/n grows with n (ω(n) completion): {} ({} → {})",
        if superlinear { "PASS" } else { "FAIL" },
        fnum(first_ratio),
        fnum(last_ratio)
    );
    println!(
        "constant fraction delivered by 4n slots (even at 25% jam): {}",
        if early_ok { "PASS" } else { "FAIL" }
    );
    println!(
        "(Claim 3.5.1: 1/i-batch takes ω(n) slots to finish all n, yet delivers a \
         constant fraction of n in O(n) slots even under constant-fraction jamming.)"
    );
}
