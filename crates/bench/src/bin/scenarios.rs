//! List and run the named scenario registry.
//!
//! ```sh
//! # What workloads exist?
//! cargo run --release -p contention-bench --bin scenarios
//!
//! # Run one by name (parameterized names work: batch/64, poisson/0.1, …)
//! cargo run --release -p contention-bench --bin scenarios -- batch-jammed/128
//!
//! # Replay any workload under a different channel-feedback model
//! cargo run --release -p contention-bench --bin scenarios -- batch/64 --channel cd
//!
//! # Force an execution strategy (exact | skip-ahead | bit-parallel);
//! # both accelerated engines fall back to exact automatically for
//! # workloads outside their eligibility envelope
//! cargo run --release -p contention-bench --bin scenarios -- batch/4096 --execution skip-ahead
//! cargo run --release -p contention-bench --bin scenarios -- lane-batch/256 --execution bit-parallel
//!
//! # Print a scenario as JSON instead of running it
//! cargo run --release -p contention-bench --bin scenarios -- --json smooth
//!
//! # Materialize a full-fidelity slot window from checkpoints instead of
//! # storing per-slot records for the whole run (1-based, end exclusive)
//! cargo run --release -p contention-bench --bin scenarios -- sparse-poly/4096 --window 60000..60016
//! ```

use contention_analysis::{fnum, Table};
use contention_bench::forensics::{WindowReplayer, DEFAULT_CHUNK};
use contention_bench::scenario::{entries, lookup, ChannelSpec, ScenarioRunner};
use contention_bench::{first_positional, unknown_name_exit};
use contention_sim::Execution;

/// Parse `LO..HI` into a half-open 1-based window.
fn parse_window(text: &str) -> Option<(u64, u64)> {
    let (lo, hi) = text.split_once("..")?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let channel = args
        .iter()
        .position(|a| a == "--channel")
        .and_then(|i| args.get(i + 1));
    let execution = args
        .iter()
        .position(|a| a == "--execution")
        .and_then(|i| args.get(i + 1));
    let window = args
        .iter()
        .position(|a| a == "--window")
        .and_then(|i| args.get(i + 1));
    let name = first_positional(&args, &["--channel", "--execution", "--window"]);

    let Some(name) = name else {
        let mut table = Table::new(["name", "what it exercises"])
            .with_title("scenario registry (names accept parameters, e.g. batch/64)");
        for entry in entries() {
            table.row([entry.name.to_string(), entry.summary.to_string()]);
        }
        println!("{}", table.render());
        return;
    };

    let Some(mut spec) = lookup(name) else {
        unknown_name_exit("scenario", name, entries().iter().map(|e| e.name));
    };

    if let Some(channel) = channel {
        let Some(channel_spec) = ChannelSpec::by_name(channel) else {
            eprintln!("unknown channel model `{channel}` (expected no-cd, cd, or ack-only)");
            std::process::exit(2);
        };
        spec = spec.channel(channel_spec);
    }

    if let Some(execution) = execution {
        let Some(strategy) = Execution::by_name(execution) else {
            eprintln!(
                "unknown execution strategy `{execution}` (expected exact, skip-ahead, or bit-parallel)"
            );
            std::process::exit(2);
        };
        spec = spec.execution(strategy);
    }

    if json {
        println!("{}", spec.to_json_string());
        return;
    }

    if let Some(window) = window {
        let Some((lo, hi)) = parse_window(window) else {
            eprintln!("bad --window `{window}` (expected LO..HI, e.g. 60000..60016)");
            std::process::exit(2);
        };
        if spec.checkpoint.is_none() {
            spec = spec.checkpoint_every(DEFAULT_CHUNK);
        }
        let every = spec.checkpoint.expect("just attached").every;
        let seed = spec.seed_base;
        println!(
            "replaying window [{lo}, {hi}) of `{}` at seed {seed} \
             (checkpoints every {every} slots, {} execution)…\n",
            spec.name,
            spec.execution.name()
        );
        let mut table = Table::new([
            "algorithm",
            "run slots",
            "window fingerprint",
            "delivered",
            "jammed",
            "active",
        ])
        .with_title(format!(
            "window [{lo}, {hi}) of `{}` (seed {seed})",
            spec.name
        ));
        let small = hi.saturating_sub(lo) <= 32;
        let mut detail = Vec::new();
        for idx in 0..spec.algos.len() {
            let algo_name = spec.algos[idx].name();
            let mut replayer = match WindowReplayer::capture(spec.clone(), idx, seed) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("checkpoint capture failed for `{algo_name}`: {e}");
                    std::process::exit(2);
                }
            };
            let win = match replayer.window(lo, hi) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("window replay failed for `{algo_name}`: {e}");
                    std::process::exit(2);
                }
            };
            let delivered = win
                .records
                .iter()
                .filter(|r| matches!(r.outcome, contention_sim::SlotOutcome::Delivered(_)))
                .count();
            let jammed = win.records.iter().filter(|r| r.jammed).count();
            let active = win.records.iter().filter(|r| r.active).count();
            table.row([
                algo_name.clone(),
                replayer.slots().to_string(),
                format!("{:016x}", win.fingerprint),
                delivered.to_string(),
                jammed.to_string(),
                active.to_string(),
            ]);
            if small {
                detail.push((algo_name, win));
            }
        }
        println!("{}", table.render());
        for (algo_name, win) in detail {
            let mut slots =
                Table::new(["slot", "arrivals", "broadcasters", "population", "outcome"])
                    .with_title(format!("`{algo_name}` slots {lo}..{}", win.hi - 1));
            for (i, rec) in win.records.iter().enumerate() {
                slots.row([
                    (win.lo + i as u64).to_string(),
                    rec.arrivals.to_string(),
                    rec.broadcasters.to_string(),
                    rec.population.to_string(),
                    format!("{:?}", rec.outcome),
                ]);
            }
            println!("{}", slots.render());
        }
        return;
    }

    println!(
        "running `{}` ({} seed(s), channel {}, {} execution)…\n",
        spec.name,
        spec.seeds,
        spec.channel.name(),
        spec.execution.name()
    );
    let report = ScenarioRunner::new(spec).run();
    let mut table = Table::new([
        "algorithm",
        "mean delivered",
        "mean slots",
        "mean latency",
        "all drained",
    ])
    .with_title(format!("scenario `{}`", report.name));
    for algo in &report.algos {
        table.row([
            algo.name.clone(),
            fnum(algo.mean_successes()),
            fnum(algo.mean_slots()),
            algo.mean_latency().map(fnum).unwrap_or_else(|| "-".into()),
            if algo.all_drained() {
                "yes".into()
            } else {
                "no".to_string()
            },
        ]);
    }
    println!("{}", table.render());
}
