//! List and run the named scenario registry.
//!
//! ```sh
//! # What workloads exist?
//! cargo run --release -p contention-bench --bin scenarios
//!
//! # Run one by name (parameterized names work: batch/64, poisson/0.1, …)
//! cargo run --release -p contention-bench --bin scenarios -- batch-jammed/128
//!
//! # Replay any workload under a different channel-feedback model
//! cargo run --release -p contention-bench --bin scenarios -- batch/64 --channel cd
//!
//! # Force an execution strategy (exact | skip-ahead | bit-parallel);
//! # both accelerated engines fall back to exact automatically for
//! # workloads outside their eligibility envelope
//! cargo run --release -p contention-bench --bin scenarios -- batch/4096 --execution skip-ahead
//! cargo run --release -p contention-bench --bin scenarios -- lane-batch/256 --execution bit-parallel
//!
//! # Print a scenario as JSON instead of running it
//! cargo run --release -p contention-bench --bin scenarios -- --json smooth
//! ```

use contention_analysis::{fnum, Table};
use contention_bench::scenario::{entries, lookup, ChannelSpec, ScenarioRunner};
use contention_bench::{first_positional, unknown_name_exit};
use contention_sim::Execution;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let channel = args
        .iter()
        .position(|a| a == "--channel")
        .and_then(|i| args.get(i + 1));
    let execution = args
        .iter()
        .position(|a| a == "--execution")
        .and_then(|i| args.get(i + 1));
    let name = first_positional(&args, &["--channel", "--execution"]);

    let Some(name) = name else {
        let mut table = Table::new(["name", "what it exercises"])
            .with_title("scenario registry (names accept parameters, e.g. batch/64)");
        for entry in entries() {
            table.row([entry.name.to_string(), entry.summary.to_string()]);
        }
        println!("{}", table.render());
        return;
    };

    let Some(mut spec) = lookup(name) else {
        unknown_name_exit("scenario", name, entries().iter().map(|e| e.name));
    };

    if let Some(channel) = channel {
        let Some(channel_spec) = ChannelSpec::by_name(channel) else {
            eprintln!("unknown channel model `{channel}` (expected no-cd, cd, or ack-only)");
            std::process::exit(2);
        };
        spec = spec.channel(channel_spec);
    }

    if let Some(execution) = execution {
        let Some(strategy) = Execution::by_name(execution) else {
            eprintln!(
                "unknown execution strategy `{execution}` (expected exact, skip-ahead, or bit-parallel)"
            );
            std::process::exit(2);
        };
        spec = spec.execution(strategy);
    }

    if json {
        println!("{}", spec.to_json_string());
        return;
    }

    println!(
        "running `{}` ({} seed(s), channel {}, {} execution)…\n",
        spec.name,
        spec.seeds,
        spec.channel.name(),
        spec.execution.name()
    );
    let report = ScenarioRunner::new(spec).run();
    let mut table = Table::new([
        "algorithm",
        "mean delivered",
        "mean slots",
        "mean latency",
        "all drained",
    ])
    .with_title(format!("scenario `{}`", report.name));
    for algo in &report.algos {
        table.row([
            algo.name.clone(),
            fnum(algo.mean_successes()),
            fnum(algo.mean_slots()),
            algo.mean_latency().map(fnum).unwrap_or_else(|| "-".into()),
            if algo.all_drained() {
                "yes".into()
            } else {
                "no".to_string()
            },
        ]);
    }
    println!("{}", table.render());
}
