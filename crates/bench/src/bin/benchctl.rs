//! `benchctl` — client for the `benchd` campaign daemon.
//!
//! ```sh
//! # Address comes from --addr or the daemon's --port-file.
//! benchctl --port-file benchd.port ping
//!
//! # Submit a registry campaign (optionally shrunk to its smoke grid),
//! # an inline sweep file, or a single-scenario file.
//! benchctl --port-file benchd.port submit tradeoff --smoke
//! benchctl --port-file benchd.port submit --spec sweep.json --priority 5
//! benchctl --port-file benchd.port submit --scenario scenario.json --id mine
//!
//! # Observe and manage.
//! benchctl --port-file benchd.port health              # heartbeat: jobs, active, fault fires
//! benchctl --port-file benchd.port list
//! benchctl --port-file benchd.port status job-1
//! benchctl --port-file benchd.port watch job-1         # streams progress, slots/s, ETA
//! benchctl --port-file benchd.port results job-1 --format csv --out results.csv
//! benchctl --port-file benchd.port cancel job-1
//! benchctl --port-file benchd.port shutdown
//!
//! # Replay a full-fidelity slot window of one (cell, algo, seed) run —
//! # works post-hoc against done jobs, across daemon restarts.
//! benchctl --port-file benchd.port window job-1 --window 8000000..8000128 \
//!     --cell 3 --algo 0 --seed 0 --out window.csv
//! ```
//!
//! `watch` re-attaches to running jobs: it starts from the daemon's
//! status snapshot and streams events from there, so a disconnected
//! watcher loses nothing but display time.
//!
//! Every connection and call self-heals: connects retry under a capped
//! binary-exponential backoff with deterministic jitter (the same
//! window discipline as `crates/backoff`), dropped or torn connections
//! reconnect and resend idempotent requests, and `watch` silently
//! re-attaches its event stream (events carry full progress state, so
//! a re-attach loses nothing).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

use contention_bench::campaign::SweepSpec;
use contention_bench::scenario::ScenarioSpec;
use contention_bench::service::{
    JobEvent, JobSource, JobStatusInfo, Request, Response, ResultFormat, RetryPolicy, SubmitRequest,
};

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

/// The client backoff policy, jitter-seeded per process so concurrent
/// clients hammering one daemon don't march in lockstep.
fn policy() -> RetryPolicy {
    RetryPolicy::connect().with_seed(u64::from(std::process::id()))
}

struct Conn {
    addr: String,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// A transport-level retry happened during the current call (used
    /// by `submit` to recognize an `already exists` replay as success).
    retried: bool,
}

impl Conn {
    fn connect(addr: &str) -> Conn {
        let stream = policy()
            .run(|_| TcpStream::connect(addr))
            .unwrap_or_else(|e| fail(&format!("cannot reach benchd at {addr} after retries: {e}")));
        Conn {
            addr: addr.to_string(),
            reader: BufReader::new(stream.try_clone().expect("clone socket")),
            writer: stream,
            retried: false,
        }
    }

    /// One reconnect attempt; on failure the old (broken) socket stays
    /// in place and the next send/read fails into the retry loop again.
    fn reconnect_once(&mut self) -> Result<(), String> {
        let stream = TcpStream::connect(&self.addr)
            .map_err(|e| format!("cannot reach benchd at {}: {e}", self.addr))?;
        self.reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        self.writer = stream;
        Ok(())
    }

    fn try_send(&mut self, req: &Request) -> Result<(), String> {
        self.writer
            .write_all(format!("{}\n", req.to_line()).as_bytes())
            .map_err(|e| format!("lost connection to benchd: {e}"))
    }

    fn try_read(&mut self) -> Result<Response, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("lost connection to benchd: {e}"))?;
        if n == 0 {
            return Err("benchd closed the connection".into());
        }
        Response::from_line(line.trim_end()).map_err(|e| format!("bad response from benchd: {e}"))
    }

    /// One request, one response; protocol errors exit 2 (matching the
    /// CLI's unknown-name convention — the daemon embeds `did you mean`
    /// suggestions in the message).
    fn call(&mut self, req: &Request) -> Response {
        match self.call_raw(req, true) {
            Response::Error { message } => fail(&message),
            resp => resp,
        }
    }

    /// Like [`call`](Conn::call) but returns `Response::Error` instead
    /// of exiting. With `retry`, transport failures (dropped or torn
    /// connections, injected chaos) reconnect and resend under the
    /// backoff policy, and a daemon-side `bad request` for a line that
    /// parsed locally — a torn inbound frame — resends too. Callers
    /// must only pass `retry` for requests that are safe to replay.
    fn call_raw(&mut self, req: &Request, retry: bool) -> Response {
        let policy = policy();
        self.retried = false;
        let mut k = 0;
        loop {
            match self.try_send(req).and_then(|()| self.try_read()) {
                Ok(Response::Error { message })
                    if retry && message.starts_with("bad request:") && k + 1 < policy.attempts =>
                {
                    // The daemon saw a torn inbound frame; the
                    // connection itself is fine, so just resend.
                    self.retried = true;
                }
                Ok(resp) => return resp,
                Err(e) => {
                    if !retry || k + 1 >= policy.attempts {
                        fail(&e);
                    }
                    self.retried = true;
                    std::thread::sleep(policy.delay(k));
                    let _ = self.reconnect_once();
                }
            }
            k += 1;
        }
    }
}

fn status_line(s: &JobStatusInfo) -> String {
    format!(
        "{:<10} {:<10} prio {:<4} {:>4}/{:<4} cells ({} recovered){}",
        s.id,
        s.state,
        s.priority,
        s.done_units,
        s.total_units,
        s.recovered_units,
        s.error
            .as_ref()
            .map(|e| format!("  error: {e}"))
            .unwrap_or_default()
    )
}

fn read_spec_file(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")))
}

fn submit(conn: &mut Conn, args: &[String]) {
    let grab = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let source = if let Some(path) = grab("--spec") {
        let sweep = SweepSpec::from_json_str(&read_spec_file(&path))
            .unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")));
        JobSource::Sweep(sweep)
    } else if let Some(path) = grab("--scenario") {
        let spec = ScenarioSpec::from_json_str(&read_spec_file(&path))
            .unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")));
        JobSource::Scenario(spec)
    } else {
        let name = contention_bench::first_positional(args, &["--id", "--priority"])
            .unwrap_or_else(|| {
                fail("submit needs a campaign name, --spec FILE, or --scenario FILE")
            });
        JobSource::Campaign {
            name: name.to_string(),
            smoke: args.iter().any(|a| a == "--smoke"),
        }
    };
    let req = Request::Submit(Box::new(SubmitRequest {
        source,
        id: grab("--id"),
        priority: grab("--priority")
            .map(|p| {
                p.parse()
                    .unwrap_or_else(|_| fail(&format!("--priority `{p}` is not an integer")))
            })
            .unwrap_or(0),
    }));
    // Submit is only replay-safe when the caller chose the id: the
    // daemon's duplicate-directory check turns a resent-but-applied
    // submit into `already exists`, which we then count as success.
    // Auto-named submits get a single attempt so a retry can never
    // silently enqueue the job twice.
    let explicit_id = grab("--id");
    match conn.call_raw(&req, explicit_id.is_some()) {
        Response::Submitted { id, units } => println!("submitted {id} ({units} cells)"),
        Response::Error { message } if conn.retried && message.contains("already exists") => {
            let id = explicit_id.expect("transport retry implies --id");
            println!("submitted {id} (accepted on an earlier attempt)");
        }
        Response::Error { message } => fail(&message),
        other => fail(&format!("unexpected response: {other:?}")),
    }
}

/// Stream events, deriving slots/s and an ETA from successive updates.
///
/// A dropped connection (daemon restart, socket timeout, injected
/// chaos) re-attaches under the backoff policy and re-issues the
/// `Events` request: the re-attach snapshot carries the job's full
/// progress, so nothing is missed and the observed-rate baseline is
/// simply re-founded on it.
fn watch(conn: &mut Conn, id: &str) -> ! {
    let policy = policy();
    let mut started = Instant::now();
    let mut base: Option<JobEvent> = None;
    let mut failures: u32 = 0;
    'attach: loop {
        if let Err(e) = conn.try_send(&Request::Events { id: id.to_string() }) {
            failures += 1;
            if failures >= policy.attempts {
                fail(&format!("lost connection while watching {id}: {e}"));
            }
            std::thread::sleep(policy.delay(failures - 1));
            let _ = conn.reconnect_once();
            continue 'attach;
        }
        loop {
            let event = match conn.try_read() {
                Ok(Response::Event(e)) => e,
                Ok(Response::Error { message }) => fail(&message),
                Ok(other) => fail(&format!("unexpected response: {other:?}")),
                Err(e) => {
                    failures += 1;
                    if failures >= policy.attempts {
                        fail(&format!("lost connection while watching {id}: {e}"));
                    }
                    std::thread::sleep(policy.delay(failures - 1));
                    let _ = conn.reconnect_once();
                    // Re-found the rate baseline on the re-attach
                    // snapshot: the gap's progress is not ours.
                    base = None;
                    started = Instant::now();
                    continue 'attach;
                }
            };
            failures = 0;
            let elapsed = started.elapsed().as_secs_f64();
            let base = base.get_or_insert_with(|| event.clone());
            // Rates come from what *this* watcher observed (work since
            // attach), so re-attaching to a half-done job stays honest.
            let cells_done = event.done_units.saturating_sub(base.done_units);
            let rate = if elapsed > 0.0 {
                (event.slots_done - base.slots_done) / elapsed
            } else {
                0.0
            };
            let remaining = event.total_units.saturating_sub(event.done_units);
            let eta = if cells_done > 0 && remaining > 0 {
                format!(
                    "  ETA {:.0}s",
                    elapsed / cells_done as f64 * remaining as f64
                )
            } else {
                String::new()
            };
            println!(
                "{} {:<9} {:>4}/{:<4} cells  {:>12.0} slots/s{}{}",
                event.id,
                event.state,
                event.done_units,
                event.total_units,
                rate,
                eta,
                if event.label.is_empty() {
                    String::new()
                } else {
                    format!("  {}", event.label)
                }
            );
            if event.terminal {
                std::process::exit(match event.state.as_str() {
                    "done" => 0,
                    "cancelled" => 3,
                    _ => 1,
                });
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let grab = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let addr = match (grab("--addr"), grab("--port-file")) {
        (Some(addr), _) => addr,
        (None, Some(path)) => std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("cannot read port file {path}: {e}")))
            .trim()
            .to_string(),
        (None, None) => fail("need --addr HOST:PORT or --port-file FILE (written by benchd)"),
    };
    // The subcommand is the first token that is not a connection flag.
    let rest: Vec<String> = {
        let mut out = Vec::new();
        let mut skip = false;
        for a in &args {
            if skip {
                skip = false;
                continue;
            }
            if a == "--addr" || a == "--port-file" {
                skip = true;
                continue;
            }
            out.push(a.clone());
        }
        out
    };
    let mut conn = Conn::connect(&addr);
    match rest.first().map(String::as_str) {
        Some("ping") => {
            conn.call(&Request::Ping);
            println!("ok");
        }
        Some("submit") => submit(&mut conn, &rest[1..]),
        Some("status") => {
            let id = rest.get(1).unwrap_or_else(|| fail("status needs a job id"));
            match conn.call(&Request::Status { id: id.clone() }) {
                Response::Status(s) => println!("{}", status_line(&s)),
                other => fail(&format!("unexpected response: {other:?}")),
            }
        }
        Some("list") => match conn.call(&Request::List) {
            Response::List(jobs) if jobs.is_empty() => println!("no jobs"),
            Response::List(jobs) => {
                for s in jobs {
                    println!("{}", status_line(&s));
                }
            }
            other => fail(&format!("unexpected response: {other:?}")),
        },
        Some("results") => {
            let id = rest
                .get(1)
                .unwrap_or_else(|| fail("results needs a job id"));
            let format = match grab("--format").as_deref() {
                None => ResultFormat::Csv,
                Some(name) => ResultFormat::by_name(name).unwrap_or_else(|| {
                    fail(&format!(
                        "unknown --format `{name}` (expected csv, jsonl, or report)"
                    ))
                }),
            };
            match conn.call(&Request::Results {
                id: id.clone(),
                format,
            }) {
                Response::Results { body, .. } => match grab("--out") {
                    Some(path) => {
                        std::fs::write(&path, body)
                            .unwrap_or_else(|e| fail(&format!("failed to write {path}: {e}")));
                        println!("wrote {path}");
                    }
                    None => print!("{body}"),
                },
                other => fail(&format!("unexpected response: {other:?}")),
            }
        }
        Some("window") => {
            let id = rest.get(1).unwrap_or_else(|| fail("window needs a job id"));
            let range = grab("--window")
                .unwrap_or_else(|| fail("window needs --window LO..HI (1-based, end exclusive)"));
            let (lo, hi) = range
                .split_once("..")
                .and_then(|(lo, hi)| Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?)))
                .unwrap_or_else(|| fail(&format!("bad --window `{range}` (expected LO..HI)")));
            let coord = |flag: &str| -> u64 {
                grab(flag)
                    .map(|v| {
                        v.parse()
                            .unwrap_or_else(|_| fail(&format!("{flag} `{v}` is not an integer")))
                    })
                    .unwrap_or(0)
            };
            match conn.call(&Request::Window {
                id: id.clone(),
                cell: coord("--cell"),
                algo: coord("--algo"),
                seed: coord("--seed"),
                lo,
                hi,
            }) {
                Response::Window {
                    lo,
                    hi,
                    slots,
                    fingerprint,
                    body,
                    ..
                } => {
                    eprintln!(
                        "window [{lo}, {hi}) of {id} (run executed {slots} slots), \
                         fingerprint {fingerprint}"
                    );
                    match grab("--out") {
                        Some(path) => {
                            std::fs::write(&path, body)
                                .unwrap_or_else(|e| fail(&format!("failed to write {path}: {e}")));
                            println!("wrote {path}");
                        }
                        None => print!("{body}"),
                    }
                }
                other => fail(&format!("unexpected response: {other:?}")),
            }
        }
        Some("cancel") => {
            let id = rest.get(1).unwrap_or_else(|| fail("cancel needs a job id"));
            conn.call(&Request::Cancel { id: id.clone() });
            println!("cancelled {id}");
        }
        Some("watch") => {
            let id = rest.get(1).unwrap_or_else(|| fail("watch needs a job id"));
            watch(&mut conn, id);
        }
        Some("health") => match conn.call(&Request::Health) {
            Response::Health {
                jobs,
                active,
                fault_fires,
            } => println!("ok: {jobs} job(s), {active} active, {fault_fires} injected fault(s)"),
            other => fail(&format!("unexpected response: {other:?}")),
        },
        Some("shutdown") => {
            conn.call(&Request::Shutdown);
            println!("benchd shutting down");
        }
        Some(other) => fail(&format!(
            "unknown subcommand `{other}` (expected ping, health, submit, status, list, \
             results, window, cancel, watch, or shutdown)"
        )),
        None => fail(
            "missing subcommand (ping, health, submit, status, list, results, window, cancel, \
             watch, shutdown)",
        ),
    }
}
