//! Executing a [`SweepSpec`]: grid expansion, work-stealing replication
//! across *scenarios × algorithms × seeds*, and streaming aggregation.
//!
//! Every (cell, algorithm, seed) triple is one task in a single flat
//! index space handed to the service layer's persistent
//! [`Scheduler`](crate::service::Scheduler) (the multi-job successor of
//! the scenario layer's work-stealing
//! [`replicate`](crate::scenario::runner::replicate()) pool), so a
//! straggler cell never idles the pool. Each task streams its slots
//! through a [`StreamingStats`] accumulator via the engine's
//! `run_for_with` / `run_until_drained_with` observers — no per-slot
//! storage anywhere, so campaign memory stays O(axes × checkpoints),
//! independent of horizon. Task results fold into per-cell
//! [`CellResult`]s in deterministic order (seed order within algorithm
//! within cell), so campaign output — and the `RESULTS.md` rendered from
//! it — is byte-stable across runs, thread counts, and (because cells
//! are journaled as they complete) across kill/resume boundaries.

use contention_sim::observer::StreamingStats;
use contention_sim::{StopReason, Trace};

use crate::scenario::spec::{AlgoSpec, HorizonSpec, ScenarioSpec};
use crate::scenario::ScenarioRunner;
use crate::service::{run_local, LocalOptions};

use super::sweep::{Cell, SweepSpec};

/// Online statistics from one (cell, algorithm, seed) run.
#[derive(Debug, Clone)]
pub(crate) struct SeedStats {
    slots: u64,
    drained: bool,
    arrivals: u64,
    jammed: u64,
    active: u64,
    successes: u64,
    broadcasts: u64,
    /// Ground-truth silent slots (no broadcasters, unjammed).
    silence: u64,
    /// Ground-truth collision slots (≥ 2 broadcasters, unjammed).
    collisions: u64,
    mean_latency: Option<f64>,
    /// Mean per-delivery energy under the cell's listen cost.
    mean_energy: Option<f64>,
    /// Channel accesses of the first delivered node (or of the first
    /// survivor when nothing was delivered) — the Theorem 1.3 metric.
    first_access: Option<u64>,
    /// Slot of the first delivery.
    first_success_slot: Option<u64>,
    /// Dyadic `(t, successes_t)` snapshots.
    checkpoints: Vec<(u64, u64)>,
}

/// Aggregated results of one grid cell for one roster algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Cell coordinates: `(axis name, point label)` in axis order.
    pub coords: Vec<(String, String)>,
    /// The materialized cell scenario (carries name, horizon, budget, …).
    pub spec: ScenarioSpec,
    /// The algorithm these rows aggregate.
    pub algo: AlgoSpec,
    /// Display name of the algorithm.
    pub algo_name: String,
    /// Seeds aggregated.
    pub seeds: u64,
    /// Mean executed slots.
    pub mean_slots: f64,
    /// Fraction of seeds that drained.
    pub drained_frac: f64,
    /// Mean arrivals (`n_t`).
    pub mean_arrivals: f64,
    /// Mean jammed slots (`d_t`).
    pub mean_jammed: f64,
    /// Mean active slots (`a_t`).
    pub mean_active: f64,
    /// Mean delivered messages.
    pub mean_delivered: f64,
    /// Mean broadcast attempts (channel accesses, summed over nodes).
    pub mean_broadcasts: f64,
    /// Mean ground-truth silent slots (no broadcasters, unjammed) — the
    /// privileged tally the feedback models hide or reveal.
    pub mean_silence: f64,
    /// Mean ground-truth collision slots (≥ 2 broadcasters, unjammed).
    pub mean_collisions: f64,
    /// Mean delivered latency (over seeds that delivered anything).
    pub mean_latency: Option<f64>,
    /// Mean model-aware energy per delivered node (accesses + the cell's
    /// `listen_cost` × listening slots; over seeds that delivered).
    pub mean_energy: Option<f64>,
    /// Mean channel accesses to the first success (Theorem 1.3 metric;
    /// over seeds, survivors counted when nothing was delivered).
    pub mean_first_access: Option<f64>,
    /// Mean slot of the first delivery (over seeds that delivered).
    pub mean_first_success_slot: Option<f64>,
    /// Dyadic checkpoint curve, in increasing `t`.
    pub checkpoints: Vec<CheckpointStat>,
}

/// One aggregated dyadic checkpoint of a cell.
///
/// A run that drains (or hits its cap) before slot `t` records no
/// snapshot at `t`, so `mean_successes` averages only the `seeds` runs
/// that got there — consumers needing an all-seeds mean must fold the
/// missing `cell.seeds - seeds` runs back in themselves (for drained
/// runs their success count is their full delivery count).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointStat {
    /// The checkpoint slot.
    pub t: u64,
    /// Seeds whose runs reached slot `t`.
    pub seeds: u64,
    /// Mean successes by `t` over those seeds.
    pub mean_successes: f64,
}

impl CellResult {
    /// Delivered messages per executed slot.
    pub fn delivery_rate(&self) -> f64 {
        if self.mean_slots > 0.0 {
            self.mean_delivered / self.mean_slots
        } else {
            0.0
        }
    }

    /// Ground-truth collisions per executed slot — reportable without
    /// record mode, whatever the feedback model hides from listeners.
    pub fn collision_rate(&self) -> f64 {
        if self.mean_slots > 0.0 {
            self.mean_collisions / self.mean_slots
        } else {
            0.0
        }
    }

    /// The label of the named axis, when present.
    pub fn coord(&self, axis: &str) -> Option<&str> {
        self.coords
            .iter()
            .find(|(a, _)| a == axis)
            .map(|(_, v)| v.as_str())
    }
}

/// Results of a whole campaign, cells in grid order.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Campaign name.
    pub name: String,
    /// Human heading.
    pub title: String,
    /// Axis names, in sweep order.
    pub axes: Vec<String>,
    /// One entry per (cell × roster algorithm), cell-major.
    pub cells: Vec<CellResult>,
}

impl CampaignResult {
    /// Total seed-runs aggregated across all cells.
    pub fn total_runs(&self) -> u64 {
        self.cells.iter().map(|c| c.seeds).sum()
    }
}

/// Executes [`SweepSpec`]s.
#[derive(Debug, Clone)]
pub struct CampaignRunner {
    sweep: SweepSpec,
}

impl CampaignRunner {
    /// Runner for a sweep.
    pub fn new(sweep: SweepSpec) -> Self {
        CampaignRunner { sweep }
    }

    /// The sweep.
    pub fn sweep(&self) -> &SweepSpec {
        &self.sweep
    }

    /// Expand the grid and run every (cell, algorithm, seed) task through
    /// the service layer's shared scheduler, folding results into cell
    /// rows. This is the exact same codepath `benchd` jobs and journaled
    /// `campaign run --resume` runs take (minus the journal), so an
    /// in-process campaign and a daemon job over the same sweep produce
    /// byte-identical output.
    pub fn run(&self) -> CampaignResult {
        match run_local(self.sweep.clone(), LocalOptions::default()) {
            Ok(outcome) => outcome
                .result
                .expect("uninterrupted local campaign must complete"),
            Err(e) => panic!("campaign `{}` failed: {e}", self.sweep.name),
        }
    }
}

/// Fold one finished run — its streamed accumulator plus its trace —
/// into the [`SeedStats`] row. Shared by the scalar task path and the
/// 64-wide lane-block path so both extract the exact same metrics.
fn finish_seed(
    spec: &ScenarioSpec,
    slots: u64,
    drained: bool,
    stats: &StreamingStats,
    trace: &Trace,
) -> SeedStats {
    let first_access = trace
        .departures()
        .first()
        .map(|d| d.accesses)
        .or_else(|| trace.survivors().first().map(|s| s.accesses));
    SeedStats {
        slots,
        drained,
        arrivals: stats.arrivals(),
        jammed: stats.jammed(),
        active: stats.active(),
        successes: stats.successes(),
        broadcasts: stats.broadcasts(),
        silence: stats.silence(),
        collisions: stats.collisions(),
        mean_latency: trace.mean_latency(),
        mean_energy: trace.mean_energy(spec.channel.listen_cost),
        first_access,
        first_success_slot: trace.departures().first().map(|d| d.departure_slot),
        checkpoints: stats
            .checkpoints()
            .iter()
            .map(|&(t, _, _, _, s)| (t, s))
            .collect(),
    }
}

/// Run one (cell, algorithm, seed) task, streaming slots through a
/// [`StreamingStats`] accumulator (the cell spec is already in aggregate
/// record mode, so nothing stores per-slot records).
pub(crate) fn run_seed(spec: &ScenarioSpec, algo: &AlgoSpec, seed: u64) -> SeedStats {
    let runner = ScenarioRunner::new(spec.clone());
    let mut sim = runner.sim(algo, seed);
    let mut stats = StreamingStats::new();
    let drained = if let Some(policy) = spec.checkpoint {
        // Checkpointed cells advance chunk by chunk — the exact call
        // pattern capture passes and window replays use — so a window
        // replayed post-hoc from this cell's checkpoint handle walks the
        // same trajectory the journaled aggregates came from, even under
        // sparse execution. Drain is detected at chunk boundaries.
        let drain_bounded = matches!(spec.horizon, HorizonSpec::UntilDrained { .. });
        loop {
            if runner.advance_chunk(&mut sim, policy.every, |_, rec| stats.record(rec)) == 0 {
                break;
            }
            if drain_bounded && sim.active_count() == 0 && sim.adversary().exhausted() {
                break;
            }
        }
        sim.active_count() == 0 && sim.adversary().exhausted()
    } else {
        match spec.horizon {
            HorizonSpec::Fixed { slots } => {
                sim.run_for_with(slots, |_, rec| stats.record(rec));
                sim.active_count() == 0 && sim.adversary().exhausted()
            }
            HorizonSpec::UntilDrained { max_slots } => {
                sim.run_until_drained_with(max_slots, |_, rec| stats.record(rec))
                    == StopReason::Drained
            }
        }
    };
    let slots = sim.current_slot();
    let trace = sim.into_trace();
    finish_seed(spec, slots, drained, &stats, &trace)
}

/// Seeds per scheduler task for this (cell, algorithm) unit: 64 when the
/// cell is lane-eligible under bit-parallel execution, 1 otherwise. The
/// scheduler calls this when laying out tasks and again in workers when
/// claiming them — it is a pure function of the unit, so the two always
/// agree.
pub(crate) fn lane_block(spec: &ScenarioSpec, algo: &AlgoSpec) -> u64 {
    ScenarioRunner::new(spec.clone()).lane_block(algo)
}

/// Lane counterpart of [`run_seed`]: run the seed block
/// `first_seed .. first_seed + n` through the bit-parallel engine in one
/// pass, streaming each lane's slots through its own [`StreamingStats`],
/// and return one row per seed in seed order — bit-for-bit the rows
/// [`run_seed`] would produce for the same seeds one at a time.
pub(crate) fn run_seed_block(
    spec: &ScenarioSpec,
    algo: &AlgoSpec,
    first_seed: u64,
    n: u64,
) -> Vec<SeedStats> {
    let runner = ScenarioRunner::new(spec.clone());
    let mut sim = runner.lane_sim(algo, first_seed, n);
    let mut stats: Vec<StreamingStats> = (0..n).map(|_| StreamingStats::new()).collect();
    match spec.horizon {
        HorizonSpec::Fixed { slots } => {
            sim.run_for_with(slots, |j, _, rec| stats[j].record(rec));
        }
        HorizonSpec::UntilDrained { max_slots } => {
            sim.run_until_drained_with(max_slots, |j, _, rec| stats[j].record(rec));
        }
    }
    let per_lane: Vec<(u64, bool)> = (0..n as usize)
        .map(|j| (sim.lane_slots(j), sim.lane_drained(j)))
        .collect();
    sim.into_traces()
        .into_iter()
        .zip(per_lane)
        .zip(&stats)
        .map(|((trace, (slots, drained)), st)| finish_seed(spec, slots, drained, st, &trace))
        .collect()
}

/// Fold one unit's per-seed statistics (in seed order) into its
/// [`CellResult`] row.
pub(crate) fn aggregate(cell: &Cell, algo: &AlgoSpec, rows: &[SeedStats]) -> CellResult {
    let n = rows.len().max(1) as f64;
    let mean = |f: &dyn Fn(&SeedStats) -> f64| rows.iter().map(f).sum::<f64>() / n;
    let opt_mean = |f: &dyn Fn(&SeedStats) -> Option<f64>| {
        let vals: Vec<f64> = rows.iter().filter_map(f).collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    };
    // Checkpoint slots are dyadic, so runs of different lengths share a
    // prefix; average each t over the seeds that reached it. BTreeMap
    // keeps the fold order-independent and the output sorted.
    let mut by_t: std::collections::BTreeMap<u64, (u64, f64)> = Default::default();
    for row in rows {
        for &(t, s) in &row.checkpoints {
            let e = by_t.entry(t).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += s as f64;
        }
    }
    CellResult {
        coords: cell.coords.clone(),
        spec: cell.spec.clone(),
        algo: algo.clone(),
        algo_name: algo.name(),
        seeds: rows.len() as u64,
        mean_slots: mean(&|r| r.slots as f64),
        drained_frac: mean(&|r| f64::from(u8::from(r.drained))),
        mean_arrivals: mean(&|r| r.arrivals as f64),
        mean_jammed: mean(&|r| r.jammed as f64),
        mean_active: mean(&|r| r.active as f64),
        mean_delivered: mean(&|r| r.successes as f64),
        mean_broadcasts: mean(&|r| r.broadcasts as f64),
        mean_silence: mean(&|r| r.silence as f64),
        mean_collisions: mean(&|r| r.collisions as f64),
        mean_latency: opt_mean(&|r| r.mean_latency),
        mean_energy: opt_mean(&|r| r.mean_energy),
        mean_first_access: opt_mean(&|r| r.first_access.map(|a| a as f64)),
        mean_first_success_slot: opt_mean(&|r| r.first_success_slot.map(|s| s as f64)),
        checkpoints: by_t
            .into_iter()
            .map(|(t, (count, sum))| CheckpointStat {
                t,
                seeds: count,
                mean_successes: sum / count as f64,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::sweep::Axis;
    use crate::scenario::spec::RecordMode;
    use crate::scenario::{AlgoSpec, BaselineSpec};

    fn mini_sweep() -> SweepSpec {
        SweepSpec::new(
            "mini",
            "Mini",
            ScenarioSpec::batch(8, 0.0)
                .algos([
                    AlgoSpec::cjz_constant_jamming(),
                    AlgoSpec::Baseline(BaselineSpec::BinaryExponential),
                ])
                .seeds(2)
                .until_drained(100_000),
        )
        .axis(Axis::jam([0.0, 0.2]))
    }

    #[test]
    fn runs_grid_and_aggregates_cells() {
        let result = CampaignRunner::new(mini_sweep()).run();
        assert_eq!(result.name, "mini");
        assert_eq!(result.axes, vec!["jam".to_string()]);
        // 2 cells × 2 roster algos.
        assert_eq!(result.cells.len(), 4);
        assert_eq!(result.total_runs(), 8);
        for cell in &result.cells {
            assert_eq!(cell.seeds, 2);
            assert_eq!(cell.spec.record, RecordMode::Aggregate);
            assert_eq!(cell.drained_frac, 1.0, "{} failed to drain", cell.spec.name);
            assert_eq!(cell.mean_delivered, 8.0);
            assert_eq!(cell.mean_arrivals, 8.0);
            assert!(cell.mean_slots > 0.0);
            assert!(cell.delivery_rate() > 0.0);
            assert!(cell.mean_latency.is_some());
            assert!(cell.mean_first_access.is_some());
            // Ground-truth tallies partition the executed slots.
            assert!(
                (cell.mean_silence + cell.mean_collisions + cell.mean_jammed + cell.mean_delivered
                    - cell.mean_slots)
                    .abs()
                    < 1e-9,
                "tallies must partition slots in {}",
                cell.spec.name
            );
            // Free listening: energy reduces to accesses per delivery.
            let energy = cell.mean_energy.expect("all seeds delivered");
            assert!(energy >= 1.0, "every delivery costs at least one access");
            assert!(!cell.checkpoints.is_empty());
            // The checkpoint curve is monotone in t.
            for pair in cell.checkpoints.windows(2) {
                assert!(pair[0].t < pair[1].t);
                assert!(pair[0].mean_successes <= pair[1].mean_successes);
            }
            assert!(cell
                .checkpoints
                .iter()
                .all(|c| c.seeds >= 1 && c.seeds <= cell.seeds));
        }
        // Cells arrive in grid order; the jam coordinate tags them.
        assert_eq!(result.cells[0].coord("jam"), Some("0"));
        assert_eq!(result.cells[2].coord("jam"), Some("0.2"));
    }

    #[test]
    fn campaign_results_are_deterministic() {
        let a = CampaignRunner::new(mini_sweep()).run();
        let b = CampaignRunner::new(mini_sweep()).run();
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.mean_slots, y.mean_slots);
            assert_eq!(x.mean_delivered, y.mean_delivered);
            assert_eq!(x.checkpoints, y.checkpoints);
            assert_eq!(x.mean_latency, y.mean_latency);
        }
    }

    #[test]
    fn checkpointed_cells_stream_the_same_aggregates() {
        let spec = ScenarioSpec::batch(8, 0.2)
            .algos([AlgoSpec::cjz_constant_jamming()])
            .fixed_horizon(500)
            .aggregate_only();
        let algo = spec.algos[0].clone();
        let plain = run_seed(&spec, &algo, 3);
        let chunked = run_seed(&spec.clone().checkpoint_every(64), &algo, 3);
        assert_eq!(plain.slots, chunked.slots);
        assert_eq!(plain.drained, chunked.drained);
        assert_eq!(plain.arrivals, chunked.arrivals);
        assert_eq!(plain.jammed, chunked.jammed);
        assert_eq!(plain.successes, chunked.successes);
        assert_eq!(plain.broadcasts, chunked.broadcasts);
        assert_eq!(plain.checkpoints, chunked.checkpoints);
        assert_eq!(plain.mean_latency, chunked.mean_latency);
    }

    #[test]
    fn fixed_horizon_cells_report_undrained_backlog() {
        // One slot cannot drain an 8-node batch: the campaign must report
        // the truth rather than panic.
        let sweep = SweepSpec::new(
            "stub",
            "Stub",
            ScenarioSpec::batch(8, 0.0)
                .algos([AlgoSpec::cjz_constant_jamming()])
                .fixed_horizon(1),
        );
        let result = CampaignRunner::new(sweep).run();
        assert_eq!(result.cells.len(), 1);
        assert_eq!(result.cells[0].drained_frac, 0.0);
        assert_eq!(result.cells[0].mean_slots, 1.0);
    }
}
