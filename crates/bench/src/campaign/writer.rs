//! Tabular campaign output: flat CSV and one-object-per-cell JSONL.
//!
//! Both writers render a [`CampaignResult`] row-per-(cell × algorithm),
//! with one column per sweep axis. CSV fields go through the analysis
//! crate's [`csv_escape`] (algorithm names and axis labels may contain
//! commas); JSONL reuses the scenario API's hand-rolled [`Json`] layer, so
//! the whole pipeline stays inside the offline dependency set.
//!
//! Output is *row-oriented* all the way down: [`csv_header`],
//! [`csv_row`], and [`jsonl_row`] render individual lines, and
//! [`to_csv`] / [`to_jsonl`] are nothing but loops over them — so the
//! streaming path (`campaign run` writing each cell as it completes, the
//! service layer finalizing journaled jobs) and the batch path are the
//! same bytes by construction. [`OrderedLineWriter`] is the streaming
//! sink: rows pushed in any completion order come out in grid order, one
//! flushed line per completed cell, so `tail -f` follows a running
//! campaign and a crash leaves a valid row-prefix on disk.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

use contention_analysis::csv_escape;

use crate::scenario::Json;

#[cfg(test)]
use super::runner::CheckpointStat;
use super::runner::{CampaignResult, CellResult};

fn opt_num(v: Option<f64>) -> String {
    v.map(|x| x.to_string()).unwrap_or_default()
}

/// The CSV header line (no trailing newline) for a campaign sweeping the
/// given axes.
pub fn csv_header(axes: &[String]) -> String {
    let mut header: Vec<String> = vec!["campaign".into(), "scenario".into()];
    header.extend(axes.iter().cloned());
    header.extend(
        [
            "algo",
            "seeds",
            "slots",
            "drained_frac",
            "arrivals",
            "jammed",
            "active",
            "delivered",
            "delivery_rate",
            "broadcasts",
            "silence",
            "collisions",
            "collision_rate",
            "latency",
            "energy",
            "first_access",
            "first_success_slot",
        ]
        .map(String::from),
    );
    header
        .iter()
        .map(|h| csv_escape(h))
        .collect::<Vec<_>>()
        .join(",")
}

/// One CSV row (no trailing newline) for a (cell × algorithm) result.
pub fn csv_row(campaign: &str, axes: &[String], cell: &CellResult) -> String {
    let mut row: Vec<String> = vec![campaign.to_string(), cell.spec.name.clone()];
    for axis in axes {
        row.push(cell.coord(axis).unwrap_or_default().to_string());
    }
    row.push(cell.algo_name.clone());
    row.push(cell.seeds.to_string());
    row.push(cell.mean_slots.to_string());
    row.push(cell.drained_frac.to_string());
    row.push(cell.mean_arrivals.to_string());
    row.push(cell.mean_jammed.to_string());
    row.push(cell.mean_active.to_string());
    row.push(cell.mean_delivered.to_string());
    row.push(cell.delivery_rate().to_string());
    row.push(cell.mean_broadcasts.to_string());
    row.push(cell.mean_silence.to_string());
    row.push(cell.mean_collisions.to_string());
    row.push(cell.collision_rate().to_string());
    row.push(opt_num(cell.mean_latency));
    row.push(opt_num(cell.mean_energy));
    row.push(opt_num(cell.mean_first_access));
    row.push(opt_num(cell.mean_first_success_slot));
    row.iter()
        .map(|c| csv_escape(c))
        .collect::<Vec<_>>()
        .join(",")
}

/// Render a campaign as CSV: a header naming the axes, then one row per
/// (cell × algorithm) in grid order.
pub fn to_csv(result: &CampaignResult) -> String {
    let mut out = csv_header(&result.axes);
    out.push('\n');
    for cell in &result.cells {
        out.push_str(&csv_row(&result.name, &result.axes, cell));
        out.push('\n');
    }
    out
}

fn cell_to_json(campaign: &str, cell: &CellResult) -> Json {
    let coords = cell
        .coords
        .iter()
        .map(|(a, v)| (a.clone(), Json::Str(v.clone())))
        .collect();
    Json::Obj(vec![
        ("campaign".into(), Json::Str(campaign.to_string())),
        ("scenario".into(), Json::Str(cell.spec.name.clone())),
        ("coords".into(), Json::Obj(coords)),
        ("algo".into(), Json::Str(cell.algo_name.clone())),
        ("seeds".into(), Json::u64(cell.seeds)),
        ("slots".into(), Json::Num(cell.mean_slots)),
        ("drained_frac".into(), Json::Num(cell.drained_frac)),
        ("arrivals".into(), Json::Num(cell.mean_arrivals)),
        ("jammed".into(), Json::Num(cell.mean_jammed)),
        ("active".into(), Json::Num(cell.mean_active)),
        ("delivered".into(), Json::Num(cell.mean_delivered)),
        ("delivery_rate".into(), Json::Num(cell.delivery_rate())),
        ("broadcasts".into(), Json::Num(cell.mean_broadcasts)),
        ("silence".into(), Json::Num(cell.mean_silence)),
        ("collisions".into(), Json::Num(cell.mean_collisions)),
        ("collision_rate".into(), Json::Num(cell.collision_rate())),
        ("latency".into(), Json::opt_f64(cell.mean_latency)),
        ("energy".into(), Json::opt_f64(cell.mean_energy)),
        ("first_access".into(), Json::opt_f64(cell.mean_first_access)),
        (
            "first_success_slot".into(),
            Json::opt_f64(cell.mean_first_success_slot),
        ),
        (
            "checkpoints".into(),
            Json::Arr(
                cell.checkpoints
                    .iter()
                    .map(|c| {
                        Json::Arr(vec![
                            Json::u64(c.t),
                            Json::u64(c.seeds),
                            Json::Num(c.mean_successes),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// One JSONL row (no trailing newline) for a (cell × algorithm) result.
pub fn jsonl_row(campaign: &str, cell: &CellResult) -> String {
    cell_to_json(campaign, cell).render()
}

/// Render a campaign as JSON Lines: one object per (cell × algorithm)
/// row, in grid order — streamable into jq/pandas-style tooling.
pub fn to_jsonl(result: &CampaignResult) -> String {
    let mut out = String::new();
    for cell in &result.cells {
        out.push_str(&jsonl_row(&result.name, cell));
        out.push('\n');
    }
    out
}

/// A streaming line sink that restores grid order.
///
/// Cells finish in whatever order the worker pool schedules them, but the
/// on-disk CSV/JSONL must match the batch writers byte-for-byte. The
/// writer accepts `(index, line)` pairs in any order and emits lines
/// strictly by ascending index, holding out-of-order arrivals in a small
/// buffer. Every emitted line is flushed immediately, so `tail -f` sees
/// each row as soon as its turn comes and a crash leaves a clean
/// row-prefix of the final file.
#[derive(Debug)]
pub struct OrderedLineWriter {
    file: File,
    next: usize,
    pending: BTreeMap<usize, String>,
}

impl OrderedLineWriter {
    /// Create (truncating) the file at `path` and write the header line,
    /// if any, flushed.
    pub fn create(path: &Path, header: Option<&str>) -> io::Result<Self> {
        let mut file = File::create(path)?;
        if let Some(h) = header {
            file.write_all(h.as_bytes())?;
            file.write_all(b"\n")?;
            file.flush()?;
        }
        Ok(OrderedLineWriter {
            file,
            next: 0,
            pending: BTreeMap::new(),
        })
    }

    /// Submit the line for row `index` (no trailing newline). Lines are
    /// written in ascending index order; an out-of-order line is buffered
    /// until its predecessors arrive. Each written line is flushed.
    pub fn push(&mut self, index: usize, line: String) -> io::Result<()> {
        self.pending.insert(index, line);
        let mut wrote = false;
        while let Some(line) = self.pending.remove(&self.next) {
            self.file.write_all(line.as_bytes())?;
            self.file.write_all(b"\n")?;
            self.next += 1;
            wrote = true;
        }
        if wrote {
            self.file.flush()?;
        }
        Ok(())
    }

    /// Number of lines physically written so far (excluding the header).
    pub fn written(&self) -> usize {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{AlgoSpec, ScenarioSpec};

    fn fake_result() -> CampaignResult {
        let algo = AlgoSpec::cjz_constant_jamming();
        let cell = CellResult {
            coords: vec![("n".into(), "a,b".into())],
            spec: ScenarioSpec::batch(4, 0.0),
            algo: algo.clone(),
            algo_name: "cjz[g=const(2),tuned]".into(),
            seeds: 2,
            mean_slots: 10.0,
            drained_frac: 1.0,
            mean_arrivals: 4.0,
            mean_jammed: 0.0,
            mean_active: 9.0,
            mean_delivered: 4.0,
            mean_broadcasts: 12.0,
            mean_silence: 3.0,
            mean_collisions: 2.0,
            mean_latency: Some(3.5),
            mean_energy: Some(4.25),
            mean_first_access: Some(2.0),
            mean_first_success_slot: None,
            checkpoints: vec![
                CheckpointStat {
                    t: 1,
                    seeds: 2,
                    mean_successes: 0.0,
                },
                CheckpointStat {
                    t: 2,
                    seeds: 2,
                    mean_successes: 1.0,
                },
            ],
        };
        CampaignResult {
            name: "fake".into(),
            title: "Fake".into(),
            axes: vec!["n".into()],
            cells: vec![cell],
        }
    }

    #[test]
    fn csv_escapes_commas_in_labels_and_algo_names() {
        let csv = to_csv(&fake_result());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("campaign,scenario,n,algo,seeds"));
        assert!(
            lines[1].contains("\"a,b\""),
            "axis label quoted: {}",
            lines[1]
        );
        assert!(
            lines[1].contains("\"cjz[g=const(2),tuned]\""),
            "algo name quoted: {}",
            lines[1]
        );
        // A quoted field must not split the row: column count matches.
        assert_eq!(lines[0].split(',').count(), 20);
        assert!(
            lines[0].contains("silence,collisions,collision_rate"),
            "ground-truth tally columns present: {}",
            lines[0]
        );
        assert!(lines[0].contains("energy"));
    }

    #[test]
    fn row_writers_match_batch_writers() {
        let result = fake_result();
        let mut csv = csv_header(&result.axes);
        csv.push('\n');
        let mut jsonl = String::new();
        for cell in &result.cells {
            csv.push_str(&csv_row(&result.name, &result.axes, cell));
            csv.push('\n');
            jsonl.push_str(&jsonl_row(&result.name, cell));
            jsonl.push('\n');
        }
        assert_eq!(csv, to_csv(&result));
        assert_eq!(jsonl, to_jsonl(&result));
    }

    #[test]
    fn ordered_writer_restores_grid_order_and_flushes_per_line() {
        let dir = std::env::temp_dir().join(format!(
            "olw-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        let mut w = OrderedLineWriter::create(&path, Some("h")).unwrap();
        // Out-of-order arrival: 2 buffers, 0 drains, 1 drains 1 and 2.
        w.push(2, "two".into()).unwrap();
        assert_eq!(w.written(), 0);
        w.push(0, "zero".into()).unwrap();
        assert_eq!(w.written(), 1);
        // Flushed per line: the prefix is already on disk mid-stream.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "h\nzero\n");
        w.push(1, "one".into()).unwrap();
        assert_eq!(w.written(), 3);
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "h\nzero\none\ntwo\n"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn jsonl_rows_parse_back_as_json() {
        let jsonl = to_jsonl(&fake_result());
        for line in jsonl.lines() {
            let v = Json::parse(line).expect("valid JSON per line");
            assert_eq!(v.get("campaign").unwrap(), &Json::Str("fake".into()));
            assert_eq!(v.get("latency").unwrap(), &Json::Num(3.5));
            assert_eq!(v.get("first_success_slot").unwrap(), &Json::Null);
            assert_eq!(v.get("silence").unwrap(), &Json::Num(3.0));
            assert_eq!(v.get("collisions").unwrap(), &Json::Num(2.0));
            assert_eq!(v.get("collision_rate").unwrap(), &Json::Num(0.2));
            assert_eq!(v.get("energy").unwrap(), &Json::Num(4.25));
        }
    }
}
