//! Rendering campaign results: ASCII tables for terminals and the
//! `RESULTS.md` generator.
//!
//! `RESULTS.md` is a *build artifact with a contract*: regenerating it
//! from the same source tree is byte-identical (fixed seeds, work-stealing
//! replication that reports in seed order, no timestamps, no hash-ordered
//! iteration), so a diff in review means the simulation itself changed.

use std::fmt::Write as _;

use contention_analysis::{fnum, sparkline, Table};

use super::registry;
use super::runner::{CampaignResult, CampaignRunner, CellResult, CheckpointStat};

/// Generic ASCII table over a campaign's rows (axes, algorithm, headline
/// metrics) — what `campaign run` prints.
pub fn cells_table(result: &CampaignResult) -> Table {
    let mut headers: Vec<String> = result.axes.clone();
    headers.extend(
        [
            "algo",
            "seeds",
            "slots",
            "delivered",
            "rate",
            "latency",
            "drained",
        ]
        .map(String::from),
    );
    let mut table = Table::new(headers).with_title(result.title.clone());
    for cell in &result.cells {
        let mut row: Vec<String> = result
            .axes
            .iter()
            .map(|a| cell.coord(a).unwrap_or_default().to_string())
            .collect();
        row.push(cell.algo_name.clone());
        row.push(cell.seeds.to_string());
        row.push(fnum(cell.mean_slots));
        row.push(fnum(cell.mean_delivered));
        row.push(fnum(cell.delivery_rate()));
        row.push(cell.mean_latency.map(fnum).unwrap_or_else(|| "-".into()));
        row.push(fnum(cell.drained_frac));
        table.row(row);
    }
    table
}

/// Group the cells by algorithm (preserving roster order) and return
/// `(algo name, cells)` series — the sparkline grouping.
fn by_algo(result: &CampaignResult) -> Vec<(String, Vec<&CellResult>)> {
    let mut out: Vec<(String, Vec<&CellResult>)> = Vec::new();
    for cell in &result.cells {
        match out.iter_mut().find(|(name, _)| *name == cell.algo_name) {
            Some((_, cells)) => cells.push(cell),
            None => out.push((cell.algo_name.clone(), vec![cell])),
        }
    }
    out
}

fn spark_lines(
    out: &mut String,
    result: &CampaignResult,
    metric_name: &str,
    metric: impl Fn(&CellResult) -> f64,
) {
    let axis_labels: Vec<&str> = {
        // Cells in grid order: the per-algo cell sequence follows the axes.
        let first_algo = by_algo(result);
        first_algo
            .first()
            .map(|(_, cells)| {
                cells
                    .iter()
                    .map(|c| c.coords.last().map(|(_, v)| v.as_str()).unwrap_or(""))
                    .collect()
            })
            .unwrap_or_default()
    };
    let _ = writeln!(
        out,
        "\n`{}` across {} ({}):\n",
        metric_name,
        result.axes.join(" × "),
        axis_labels.join(", ")
    );
    for (name, cells) in by_algo(result) {
        let values: Vec<f64> = cells.iter().map(|c| metric(c)).collect();
        let _ = writeln!(out, "    {} `{}`", sparkline(&values), name);
    }
}

/// Render one campaign as a markdown section (table + sparkline curve).
pub fn render_section(result: &CampaignResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## {}\n", result.title);
    let _ = writeln!(
        out,
        "Campaign `{}`: {} cell(s) × roster, {} seeded runs.\n",
        result.name,
        result.cells.len(),
        result.total_runs()
    );
    match result.name.as_str() {
        "tradeoff" => render_tradeoff(&mut out, result),
        "lowerbound/theorem13" => render_theorem13(&mut out, result),
        "jamming-robustness" => render_jamming(&mut out, result),
        "constant-jamming-growth" => render_growth(&mut out, result),
        "cd-vs-nocd/batch" | "cd-vs-nocd/jamming" => render_channel_models(&mut out, result),
        _ => {
            out.push_str(&cells_table(result).to_markdown());
            if result.cells.len() > 1 {
                spark_lines(&mut out, result, "delivery rate", CellResult::delivery_rate);
            }
        }
    }
    out
}

/// Per-protocol-cell bounded-throughput ratios
/// `a_t / (n_t·f(t) + d_t·g(t))` for a tradeoff-shaped campaign —
/// Theorem 1.2 holds iff these stay O(1) across the `g` axis. Baseline
/// cells (no `(f,g)` parameters) are skipped.
pub fn tradeoff_ratios(result: &CampaignResult) -> Vec<f64> {
    result.cells.iter().filter_map(cell_ratio).collect()
}

/// One cell's bounded-throughput ratio (`None` for baseline cells) — the
/// single definition behind both [`tradeoff_ratios`] (exp_tradeoff's
/// verdict) and the RESULTS.md `ratio` column.
fn cell_ratio(cell: &CellResult) -> Option<f64> {
    let params = cell.algo.params()?;
    let t = cell.spec.horizon.cap();
    let budget = cell.mean_arrivals * params.f().at(t) + cell.mean_jammed * params.g().at(t);
    Some(if budget > 0.0 {
        cell.mean_active / budget
    } else {
        0.0
    })
}

/// The Theorem 1.2 table: per admissible `g`, the Definition-1.1
/// quantities and the bounded ratio `a_t / (n_t·f(t) + d_t·g(t))`.
fn render_tradeoff(out: &mut String, result: &CampaignResult) {
    let mut table = Table::new([
        "g(x)",
        "jam",
        "f(t)",
        "n_t",
        "d_t",
        "a_t",
        "delivered",
        "ratio",
    ]);
    let mut ratios = Vec::new();
    for cell in &result.cells {
        let t = cell.spec.horizon.cap();
        let Some(params) = cell.algo.params() else {
            continue;
        };
        let f_t = params.f().at(t);
        let jam = match &cell.spec.adversary {
            crate::scenario::spec::AdversarySpec::Composite {
                jamming: crate::scenario::spec::JammingSpec::Random { p },
                ..
            } => *p,
            _ => 0.0,
        };
        let ratio = cell_ratio(cell).expect("params checked above");
        ratios.push(ratio);
        table.row([
            params.g().label(),
            fnum(jam),
            fnum(f_t),
            fnum(cell.mean_arrivals),
            fnum(cell.mean_jammed),
            fnum(cell.mean_active),
            fnum(cell.mean_delivered),
            fnum(ratio),
        ]);
    }
    out.push_str(&table.to_markdown());
    let _ = writeln!(
        out,
        "\nTrade-off curve — `ratio` across the g spectrum (bounded ⇔ Theorem 1.2):\n"
    );
    let _ = writeln!(out, "    {}", sparkline(&ratios));
    let _ = writeln!(
        out,
        "\nTheorem 1.2 predicts the active-slot count `a_t` stays within a\nconstant of the budget `n_t·f(t) + d_t·g(t)` for every admissible `g`\n— the `ratio` column is that constant, and it must not blow up as the\ntolerance `g` grows."
    );
}

/// The Theorem 1.3 table: accesses to first success vs `log² t`.
fn render_theorem13(out: &mut String, result: &CampaignResult) {
    let mut table = Table::new(["t", "accesses to 1st success", "log2^2(t)", "ratio"]);
    let mut accesses = Vec::new();
    for cell in &result.cells {
        let t = match &cell.spec.adversary {
            crate::scenario::spec::AdversarySpec::Theorem13 { horizon, .. } => *horizon,
            _ => cell.spec.horizon.cap(),
        };
        let lg = (t as f64).log2();
        let lg2 = lg * lg;
        let acc = cell.mean_first_access.unwrap_or(0.0);
        accesses.push(acc);
        table.row([
            cell.coord("t").unwrap_or_default().to_string(),
            fnum(acc),
            fnum(lg2),
            fnum(acc / lg2),
        ]);
    }
    out.push_str(&table.to_markdown());
    let _ = writeln!(
        out,
        "\nLower-bound curve — forced accesses across the horizon axis:\n"
    );
    let _ = writeln!(out, "    {}", sparkline(&accesses));
    let _ = writeln!(
        out,
        "\nTheorem 1.3 forces `Ω(log²t / log²g(t))` channel accesses before the\nfirst success; the algorithm spends `Θ(log²t)` (g constant) — growing\nwith the horizon but polylogarithmically, matching the bound and making\nthe trade-off tight."
    );
}

/// The jamming-robustness table: drain behaviour per (jam × algorithm).
fn render_jamming(out: &mut String, result: &CampaignResult) {
    let mut table = Table::new(["jam", "algo", "drained", "slots", "delivered", "latency"]);
    for cell in &result.cells {
        table.row([
            cell.coord("jam").unwrap_or_default().to_string(),
            cell.algo_name.clone(),
            fnum(cell.drained_frac),
            fnum(cell.mean_slots),
            fnum(cell.mean_delivered),
            cell.mean_latency.map(fnum).unwrap_or_else(|| "-".into()),
        ]);
    }
    out.push_str(&table.to_markdown());
    spark_lines(out, result, "slots to drain", |c| c.mean_slots);
    let _ = writeln!(
        out,
        "\nThe paper's batch claim: the protocol drains `n` nodes in near-linear\nslots even with a constant fraction of slots jammed — its curve stays\nflat-ish while backoff baselines blow up (or stop draining at all,\n`drained < 1`)."
    );
}

/// The headline growth table: cjz deliveries at dyadic checkpoints.
fn render_growth(out: &mut String, result: &CampaignResult) {
    // Keep-up comparison across the roster at the final horizon.
    let mut cmp = Table::new(["algorithm", "arrivals", "delivered", "backlog", "kept up?"]);
    for cell in &result.cells {
        let backlog = cell.mean_arrivals - cell.mean_delivered;
        let kept = backlog <= 0.05 * cell.mean_arrivals.max(1.0);
        cmp.row([
            cell.algo_name.clone(),
            fnum(cell.mean_arrivals),
            fnum(cell.mean_delivered),
            fnum(backlog),
            if kept { "yes".into() } else { "NO".to_string() },
        ]);
    }
    out.push_str(&cmp.to_markdown());
    // The paper algorithm's delivery curve at dyadic checkpoints.
    if let Some(cjz) = result.cells.first() {
        let mut growth = Table::new(["t", "delivered", "t/log2(t)", "deliv·log(t)/t"]);
        let mut curve = Vec::new();
        for c in cell_tail(&cjz.checkpoints, 8) {
            let tf = c.t as f64;
            growth.row([
                c.t.to_string(),
                fnum(c.mean_successes),
                fnum(tf / tf.log2()),
                fnum(c.mean_successes * tf.log2() / tf),
            ]);
            curve.push(c.mean_successes);
        }
        let _ = writeln!(out, "\n`{}` deliveries at dyadic t:\n", cjz.algo_name);
        out.push_str(&growth.to_markdown());
        let _ = writeln!(out, "\nDelivery growth curve (dyadic t):\n");
        let _ = writeln!(out, "    {}", sparkline(&curve));
    }
    let _ = writeln!(
        out,
        "\nWith constant-fraction jamming the best possible delivery count is\n`Θ(t/log t)` (Theorems 1.2 + 1.3). The paper algorithm keeps up with\nthe critical offered load with bounded backlog, and its\n`deliv·log(t)/t` column settles to a constant — the `Θ(t/log t)`\nsignature. (At this offered density the channel is easy enough that\nbaselines also keep up; the lower bound says *nothing* can deliver\nasymptotically more than this curve.)"
    );
}

/// The cross-model table: per (channel × algorithm), drain behaviour,
/// ground-truth collision tallies, and model-aware energy.
fn render_channel_models(out: &mut String, result: &CampaignResult) {
    let mut table = Table::new([
        "channel",
        "algo",
        "drained",
        "slots",
        "delivered",
        "collisions",
        "silence",
        "latency",
        "energy",
    ]);
    for cell in &result.cells {
        table.row([
            cell.coord("channel").unwrap_or_default().to_string(),
            cell.algo_name.clone(),
            fnum(cell.drained_frac),
            fnum(cell.mean_slots),
            fnum(cell.mean_delivered),
            fnum(cell.mean_collisions),
            fnum(cell.mean_silence),
            cell.mean_latency.map(fnum).unwrap_or_else(|| "-".into()),
            cell.mean_energy.map(fnum).unwrap_or_else(|| "-".into()),
        ]);
    }
    out.push_str(&table.to_markdown());
    spark_lines(out, result, "slots to drain", |c| c.mean_slots);
    let _ = writeln!(
        out,
        "\nSame workload, same roster, same seeds — only the feedback model\nchanges. `collisions` and `silence` are privileged ground-truth tallies\n(what listeners would know if they could see them): under `cd` the\ncollision-triggered `cd-beb` turns them into signal, under `no-cd` only\nits own failures and heard successes stay informative (a\nsuccess-reactive multiplicative backoff), and under `ack-only` even\nheard successes vanish, so success-reactive baselines (`reset-beb`)\nlose their edge. `energy` prices listening per the model (`no-cd` 0.1,\n`cd` 0.2 per slot, `ack-only` free), so the same latency costs\ndifferently per channel. This is the Bender et al. / Jiang–Zheng\ncomparison axis: what collision detection buys, and what losing even\nsuccess feedback costs."
    );
}

/// The last `k` checkpoints (the asymptotic tail; early dyadic points are
/// pre-asymptotic noise).
fn cell_tail(checkpoints: &[CheckpointStat], k: usize) -> &[CheckpointStat] {
    &checkpoints[checkpoints.len().saturating_sub(k)..]
}

/// Run every report campaign and render the full `RESULTS.md` document.
/// `smoke` shrinks each campaign via [`super::sweep::SweepSpec::smoke`].
pub fn render_results_md(smoke: bool) -> String {
    let mut out = String::new();
    out.push_str("# RESULTS — regenerated trade-off curves\n\n");
    let _ = writeln!(
        out,
        "Generated by `cargo run --release -p contention-bench --bin campaign -- report{}`.",
        if smoke { " --smoke" } else { "" }
    );
    out.push_str(
        "Deterministic: fixed seeds, seed-ordered replication, no timestamps —\nrerunning on the same tree reproduces this file byte-for-byte. Numbers\nare implementation-calibrated (the paper proves constants exist, not\ntheir values); see EXPERIMENTS.md for the claim-by-claim catalogue.\n",
    );
    if smoke {
        out.push_str(
            "\n**Smoke mode**: shrunk grids and horizons — structure check, not\nmeasurement.\n",
        );
    }
    for name in registry::report_campaigns() {
        let sweep = registry::lookup(name).expect("report campaigns are registered");
        let sweep = if smoke { sweep.smoke() } else { sweep };
        let result = CampaignRunner::new(sweep).run();
        out.push('\n');
        out.push_str(&render_section(&result));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::sweep::{Axis, SweepSpec};
    use crate::scenario::{AlgoSpec, ScenarioSpec};

    fn tiny_result() -> CampaignResult {
        let sweep = SweepSpec::new(
            "tiny",
            "Tiny",
            ScenarioSpec::batch(4, 0.0)
                .algos([AlgoSpec::cjz_constant_jamming()])
                .until_drained(100_000),
        )
        .axis(Axis::jam([0.0, 0.2]));
        CampaignRunner::new(sweep).run()
    }

    #[test]
    fn cells_table_has_axis_columns_and_rows() {
        let result = tiny_result();
        let table = cells_table(&result);
        assert_eq!(table.len(), 2);
        let rendered = table.render();
        assert!(rendered.contains("jam"), "axis column present:\n{rendered}");
        assert!(rendered.contains("cjz["));
    }

    #[test]
    fn generic_section_renders_markdown_and_sparkline() {
        let section = render_section(&tiny_result());
        assert!(section.starts_with("## Tiny"));
        assert!(section.contains("| jam |"), "markdown table:\n{section}");
        assert!(
            section.contains('▁') || section.contains('█') || section.contains('▄'),
            "sparkline present:\n{section}"
        );
    }
}
