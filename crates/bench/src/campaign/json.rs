//! Serialization for [`SweepSpec`]: the same hand-rolled JSON layer the
//! scenario API uses ([`crate::scenario::json`]), extended to axes and
//! edits. `SweepSpec::from_json_str(spec.to_json_string())` round-trips
//! exactly (property-tested in `tests/campaign_api.rs`).
//!
//! Completed cells round-trip too ([`cell_result_to_json`] /
//! [`cell_result_from_json`]): the service layer's write-ahead journal
//! stores one full [`CellResult`] per line, and resuming a campaign must
//! rebuild rows *exactly* (every float recovers bit-identical via the
//! shortest-round-trip rendering), so resumed CSV/JSONL/report output is
//! byte-equal to an uninterrupted run.

use crate::scenario::json::{
    algo_from_json, algo_to_json, channel_from_json, channel_to_json, g_from_json, g_to_json,
};
use crate::scenario::{Json, ScenarioSpec, SpecError};

use super::runner::{CellResult, CheckpointStat};
use super::sweep::{Axis, AxisPoint, Edit, SweepSpec};

fn edit_to_json(e: &Edit) -> Json {
    match e {
        Edit::N(n) => Json::obj(vec![
            ("kind", Json::Str("n".into())),
            ("v", Json::u64(u64::from(*n))),
        ]),
        Edit::Jam(p) => Json::obj(vec![
            ("kind", Json::Str("jam".into())),
            ("p", Json::Num(*p)),
        ]),
        Edit::Horizon(t) => Json::obj(vec![
            ("kind", Json::Str("horizon".into())),
            ("t", Json::u64(*t)),
        ]),
        Edit::Rate(r) => Json::obj(vec![
            ("kind", Json::Str("rate".into())),
            ("r", Json::Num(*r)),
        ]),
        Edit::G(g) => Json::obj(vec![("kind", Json::Str("g".into())), ("g", g_to_json(g))]),
        Edit::Algos(algos) => Json::obj(vec![
            ("kind", Json::Str("algos".into())),
            ("algos", Json::Arr(algos.iter().map(algo_to_json).collect())),
        ]),
        Edit::Seeds(s) => Json::obj(vec![
            ("kind", Json::Str("seeds".into())),
            ("n", Json::u64(*s)),
        ]),
        Edit::Channel(c) => Json::obj(vec![
            ("kind", Json::Str("channel".into())),
            ("channel", channel_to_json(c)),
        ]),
        Edit::Execution(e) => Json::obj(vec![
            ("kind", Json::Str("execution".into())),
            ("strategy", Json::Str(e.name().into())),
        ]),
    }
}

fn edit_from_json(j: &Json) -> Result<Edit, SpecError> {
    match j.kind()? {
        "n" => Ok(Edit::N(j.get("v")?.as_u32()?)),
        "jam" => Ok(Edit::Jam(j.get("p")?.as_f64()?)),
        "horizon" => Ok(Edit::Horizon(j.get("t")?.as_u64()?)),
        "rate" => Ok(Edit::Rate(j.get("r")?.as_f64()?)),
        "g" => Ok(Edit::G(g_from_json(j.get("g")?)?)),
        "algos" => Ok(Edit::Algos(
            j.get("algos")?
                .as_arr()?
                .iter()
                .map(algo_from_json)
                .collect::<Result<_, _>>()?,
        )),
        "seeds" => Ok(Edit::Seeds(j.get("n")?.as_u64()?)),
        "channel" => Ok(Edit::Channel(channel_from_json(j.get("channel")?)?)),
        "execution" => {
            let name = j.get("strategy")?.as_str()?;
            contention_sim::Execution::by_name(name)
                .map(Edit::Execution)
                .ok_or_else(|| SpecError::new(format!("unknown execution strategy `{name}`")))
        }
        other => Err(SpecError::new(format!("unknown edit kind `{other}`"))),
    }
}

fn axis_to_json(a: &Axis) -> Json {
    Json::obj(vec![
        ("name", Json::Str(a.name.clone())),
        (
            "points",
            Json::Arr(
                a.points
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("label", Json::Str(p.label.clone())),
                            (
                                "edits",
                                Json::Arr(p.edits.iter().map(edit_to_json).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn axis_from_json(j: &Json) -> Result<Axis, SpecError> {
    let mut points = Vec::new();
    for p in j.get("points")?.as_arr()? {
        points.push(AxisPoint {
            label: p.get("label")?.as_str()?.to_string(),
            edits: p
                .get("edits")?
                .as_arr()?
                .iter()
                .map(edit_from_json)
                .collect::<Result<_, _>>()?,
        });
    }
    Ok(Axis {
        name: j.get("name")?.as_str()?.to_string(),
        points,
    })
}

impl SweepSpec {
    /// Serialize to a [`Json`] tree.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("title", Json::Str(self.title.clone())),
            ("base", self.base.to_json()),
            (
                "axes",
                Json::Arr(self.axes.iter().map(axis_to_json).collect()),
            ),
        ])
    }

    /// Serialize to compact JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    /// Deserialize from a [`Json`] tree.
    pub fn from_json(j: &Json) -> Result<Self, SpecError> {
        Ok(SweepSpec {
            name: j.get("name")?.as_str()?.to_string(),
            title: j.get("title")?.as_str()?.to_string(),
            base: ScenarioSpec::from_json(j.get("base")?)?,
            axes: j
                .get("axes")?
                .as_arr()?
                .iter()
                .map(axis_from_json)
                .collect::<Result<_, _>>()?,
        })
    }

    /// Deserialize from JSON text.
    pub fn from_json_str(text: &str) -> Result<Self, SpecError> {
        Self::from_json(&Json::parse(text)?)
    }
}

/// Serialize one completed [`CellResult`] row — the write-ahead journal's
/// per-line payload. Carries the *full* materialized cell (coordinates,
/// scenario spec, algorithm) so a journal alone suffices to rebuild the
/// row without re-expanding the sweep.
pub fn cell_result_to_json(cell: &CellResult) -> Json {
    Json::obj(vec![
        (
            "coords",
            Json::Arr(
                cell.coords
                    .iter()
                    .map(|(a, v)| Json::Arr(vec![Json::Str(a.clone()), Json::Str(v.clone())]))
                    .collect(),
            ),
        ),
        ("spec", cell.spec.to_json()),
        ("algo", algo_to_json(&cell.algo)),
        ("algo_name", Json::Str(cell.algo_name.clone())),
        ("seeds", Json::u64(cell.seeds)),
        ("mean_slots", Json::Num(cell.mean_slots)),
        ("drained_frac", Json::Num(cell.drained_frac)),
        ("mean_arrivals", Json::Num(cell.mean_arrivals)),
        ("mean_jammed", Json::Num(cell.mean_jammed)),
        ("mean_active", Json::Num(cell.mean_active)),
        ("mean_delivered", Json::Num(cell.mean_delivered)),
        ("mean_broadcasts", Json::Num(cell.mean_broadcasts)),
        ("mean_silence", Json::Num(cell.mean_silence)),
        ("mean_collisions", Json::Num(cell.mean_collisions)),
        ("mean_latency", Json::opt_f64(cell.mean_latency)),
        ("mean_energy", Json::opt_f64(cell.mean_energy)),
        ("mean_first_access", Json::opt_f64(cell.mean_first_access)),
        (
            "mean_first_success_slot",
            Json::opt_f64(cell.mean_first_success_slot),
        ),
        (
            "checkpoints",
            Json::Arr(
                cell.checkpoints
                    .iter()
                    .map(|c| {
                        Json::Arr(vec![
                            Json::u64(c.t),
                            Json::u64(c.seeds),
                            Json::Num(c.mean_successes),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Deserialize a [`CellResult`] journal line. Exact inverse of
/// [`cell_result_to_json`]: every field (floats included) recovers
/// bit-identical, so journal-recovered rows render byte-equal output.
pub fn cell_result_from_json(j: &Json) -> Result<CellResult, SpecError> {
    let mut coords = Vec::new();
    for pair in j.get("coords")?.as_arr()? {
        let pair = pair.as_arr()?;
        if pair.len() != 2 {
            return Err(SpecError::new("cell coords entries are [axis, label]"));
        }
        coords.push((pair[0].as_str()?.to_string(), pair[1].as_str()?.to_string()));
    }
    let mut checkpoints = Vec::new();
    for c in j.get("checkpoints")?.as_arr()? {
        let c = c.as_arr()?;
        if c.len() != 3 {
            return Err(SpecError::new(
                "checkpoint entries are [t, seeds, mean_successes]",
            ));
        }
        checkpoints.push(CheckpointStat {
            t: c[0].as_u64()?,
            seeds: c[1].as_u64()?,
            mean_successes: c[2].as_f64()?,
        });
    }
    Ok(CellResult {
        coords,
        spec: ScenarioSpec::from_json(j.get("spec")?)?,
        algo: algo_from_json(j.get("algo")?)?,
        algo_name: j.get("algo_name")?.as_str()?.to_string(),
        seeds: j.get("seeds")?.as_u64()?,
        mean_slots: j.get("mean_slots")?.as_f64()?,
        drained_frac: j.get("drained_frac")?.as_f64()?,
        mean_arrivals: j.get("mean_arrivals")?.as_f64()?,
        mean_jammed: j.get("mean_jammed")?.as_f64()?,
        mean_active: j.get("mean_active")?.as_f64()?,
        mean_delivered: j.get("mean_delivered")?.as_f64()?,
        mean_broadcasts: j.get("mean_broadcasts")?.as_f64()?,
        mean_silence: j.get("mean_silence")?.as_f64()?,
        mean_collisions: j.get("mean_collisions")?.as_f64()?,
        mean_latency: j.get("mean_latency")?.as_opt_f64()?,
        mean_energy: j.get("mean_energy")?.as_opt_f64()?,
        mean_first_access: j.get("mean_first_access")?.as_opt_f64()?,
        mean_first_success_slot: j.get("mean_first_success_slot")?.as_opt_f64()?,
        checkpoints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{AlgoSpec, BaselineSpec, GSpec, ScenarioSpec};

    #[test]
    fn sweep_round_trips_through_json() {
        let sweep = SweepSpec::new("rt", "Round trip", ScenarioSpec::batch(16, 0.1))
            .axis(Axis::g_spectrum())
            .axis(Axis::horizons_pow2(8..=10))
            .axis(Axis::algos([
                AlgoSpec::cjz_constant_jamming(),
                AlgoSpec::Baseline(BaselineSpec::Sawtooth),
            ]))
            .axis(Axis::channels([
                crate::scenario::ChannelSpec::collision_detection().with_listen_cost(0.5),
                crate::scenario::ChannelSpec::ack_only(),
            ]))
            .axis(Axis::new(
                "misc",
                vec![AxisPoint::coupled(
                    "x",
                    [Edit::Rate(0.02), Edit::Seeds(7), Edit::G(GSpec::PolyLog(3))],
                )],
            ));
        let json = sweep.to_json_string();
        let parsed = SweepSpec::from_json_str(&json).expect("parse");
        assert_eq!(parsed, sweep);
        assert_eq!(parsed.to_json_string(), json, "canonical encoding");
    }

    #[test]
    fn cell_result_round_trips_exactly() {
        let algo = AlgoSpec::cjz_constant_jamming();
        let cell = CellResult {
            coords: vec![("jam".into(), "0.25".into()), ("n".into(), "64".into())],
            spec: ScenarioSpec::batch(64, 0.25),
            algo: algo.clone(),
            algo_name: algo.name(),
            seeds: 3,
            mean_slots: 1234.5,
            drained_frac: 2.0 / 3.0,
            mean_arrivals: 64.0,
            mean_jammed: 0.1 + 0.2, // deliberately non-representable sum
            mean_active: 1000.0,
            mean_delivered: 63.333333333333336,
            mean_broadcasts: 410.25,
            mean_silence: 700.0,
            mean_collisions: 100.0,
            mean_latency: Some(1.0 / 3.0),
            mean_energy: None,
            mean_first_access: Some(2.0),
            mean_first_success_slot: None,
            checkpoints: vec![
                CheckpointStat {
                    t: 1,
                    seeds: 3,
                    mean_successes: 0.0,
                },
                CheckpointStat {
                    t: 1024,
                    seeds: 2,
                    mean_successes: 17.5,
                },
            ],
        };
        let json = cell_result_to_json(&cell);
        let parsed = cell_result_from_json(&json).expect("parse");
        assert_eq!(parsed, cell);
        // Text round-trip too: the journal stores rendered lines.
        let reparsed =
            cell_result_from_json(&Json::parse(&json.render()).expect("text")).expect("parse");
        assert_eq!(reparsed, cell);
    }

    #[test]
    fn rejects_unknown_edit_kind() {
        let sweep = SweepSpec::new("x", "X", ScenarioSpec::batch(4, 0.0)).axis(Axis::n([4]));
        let bad = sweep
            .to_json_string()
            .replace("\"kind\":\"n\"", "\"kind\":\"nope\"");
        assert!(SweepSpec::from_json_str(&bad).is_err());
    }
}
