//! Serialization for [`SweepSpec`]: the same hand-rolled JSON layer the
//! scenario API uses ([`crate::scenario::json`]), extended to axes and
//! edits. `SweepSpec::from_json_str(spec.to_json_string())` round-trips
//! exactly (property-tested in `tests/campaign_api.rs`).

use crate::scenario::json::{
    algo_from_json, algo_to_json, channel_from_json, channel_to_json, g_from_json, g_to_json,
};
use crate::scenario::{Json, ScenarioSpec, SpecError};

use super::sweep::{Axis, AxisPoint, Edit, SweepSpec};

fn edit_to_json(e: &Edit) -> Json {
    match e {
        Edit::N(n) => Json::obj(vec![
            ("kind", Json::Str("n".into())),
            ("v", Json::u64(u64::from(*n))),
        ]),
        Edit::Jam(p) => Json::obj(vec![
            ("kind", Json::Str("jam".into())),
            ("p", Json::Num(*p)),
        ]),
        Edit::Horizon(t) => Json::obj(vec![
            ("kind", Json::Str("horizon".into())),
            ("t", Json::u64(*t)),
        ]),
        Edit::Rate(r) => Json::obj(vec![
            ("kind", Json::Str("rate".into())),
            ("r", Json::Num(*r)),
        ]),
        Edit::G(g) => Json::obj(vec![("kind", Json::Str("g".into())), ("g", g_to_json(g))]),
        Edit::Algos(algos) => Json::obj(vec![
            ("kind", Json::Str("algos".into())),
            ("algos", Json::Arr(algos.iter().map(algo_to_json).collect())),
        ]),
        Edit::Seeds(s) => Json::obj(vec![
            ("kind", Json::Str("seeds".into())),
            ("n", Json::u64(*s)),
        ]),
        Edit::Channel(c) => Json::obj(vec![
            ("kind", Json::Str("channel".into())),
            ("channel", channel_to_json(c)),
        ]),
        Edit::Execution(e) => Json::obj(vec![
            ("kind", Json::Str("execution".into())),
            ("strategy", Json::Str(e.name().into())),
        ]),
    }
}

fn edit_from_json(j: &Json) -> Result<Edit, SpecError> {
    match j.kind()? {
        "n" => Ok(Edit::N(j.get("v")?.as_u32()?)),
        "jam" => Ok(Edit::Jam(j.get("p")?.as_f64()?)),
        "horizon" => Ok(Edit::Horizon(j.get("t")?.as_u64()?)),
        "rate" => Ok(Edit::Rate(j.get("r")?.as_f64()?)),
        "g" => Ok(Edit::G(g_from_json(j.get("g")?)?)),
        "algos" => Ok(Edit::Algos(
            j.get("algos")?
                .as_arr()?
                .iter()
                .map(algo_from_json)
                .collect::<Result<_, _>>()?,
        )),
        "seeds" => Ok(Edit::Seeds(j.get("n")?.as_u64()?)),
        "channel" => Ok(Edit::Channel(channel_from_json(j.get("channel")?)?)),
        "execution" => {
            let name = j.get("strategy")?.as_str()?;
            contention_sim::Execution::by_name(name)
                .map(Edit::Execution)
                .ok_or_else(|| SpecError::new(format!("unknown execution strategy `{name}`")))
        }
        other => Err(SpecError::new(format!("unknown edit kind `{other}`"))),
    }
}

fn axis_to_json(a: &Axis) -> Json {
    Json::obj(vec![
        ("name", Json::Str(a.name.clone())),
        (
            "points",
            Json::Arr(
                a.points
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("label", Json::Str(p.label.clone())),
                            (
                                "edits",
                                Json::Arr(p.edits.iter().map(edit_to_json).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn axis_from_json(j: &Json) -> Result<Axis, SpecError> {
    let mut points = Vec::new();
    for p in j.get("points")?.as_arr()? {
        points.push(AxisPoint {
            label: p.get("label")?.as_str()?.to_string(),
            edits: p
                .get("edits")?
                .as_arr()?
                .iter()
                .map(edit_from_json)
                .collect::<Result<_, _>>()?,
        });
    }
    Ok(Axis {
        name: j.get("name")?.as_str()?.to_string(),
        points,
    })
}

impl SweepSpec {
    /// Serialize to a [`Json`] tree.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("title", Json::Str(self.title.clone())),
            ("base", self.base.to_json()),
            (
                "axes",
                Json::Arr(self.axes.iter().map(axis_to_json).collect()),
            ),
        ])
    }

    /// Serialize to compact JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    /// Deserialize from a [`Json`] tree.
    pub fn from_json(j: &Json) -> Result<Self, SpecError> {
        Ok(SweepSpec {
            name: j.get("name")?.as_str()?.to_string(),
            title: j.get("title")?.as_str()?.to_string(),
            base: ScenarioSpec::from_json(j.get("base")?)?,
            axes: j
                .get("axes")?
                .as_arr()?
                .iter()
                .map(axis_from_json)
                .collect::<Result<_, _>>()?,
        })
    }

    /// Deserialize from JSON text.
    pub fn from_json_str(text: &str) -> Result<Self, SpecError> {
        Self::from_json(&Json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{AlgoSpec, BaselineSpec, GSpec, ScenarioSpec};

    #[test]
    fn sweep_round_trips_through_json() {
        let sweep = SweepSpec::new("rt", "Round trip", ScenarioSpec::batch(16, 0.1))
            .axis(Axis::g_spectrum())
            .axis(Axis::horizons_pow2(8..=10))
            .axis(Axis::algos([
                AlgoSpec::cjz_constant_jamming(),
                AlgoSpec::Baseline(BaselineSpec::Sawtooth),
            ]))
            .axis(Axis::channels([
                crate::scenario::ChannelSpec::collision_detection().with_listen_cost(0.5),
                crate::scenario::ChannelSpec::ack_only(),
            ]))
            .axis(Axis::new(
                "misc",
                vec![AxisPoint::coupled(
                    "x",
                    [Edit::Rate(0.02), Edit::Seeds(7), Edit::G(GSpec::PolyLog(3))],
                )],
            ));
        let json = sweep.to_json_string();
        let parsed = SweepSpec::from_json_str(&json).expect("parse");
        assert_eq!(parsed, sweep);
        assert_eq!(parsed.to_json_string(), json, "canonical encoding");
    }

    #[test]
    fn rejects_unknown_edit_kind() {
        let sweep = SweepSpec::new("x", "X", ScenarioSpec::batch(4, 0.0)).axis(Axis::n([4]));
        let bad = sweep
            .to_json_string()
            .replace("\"kind\":\"n\"", "\"kind\":\"nope\"");
        assert!(SweepSpec::from_json_str(&bad).is_err());
    }
}
