//! The named campaign registry: the sweeps that regenerate the paper's
//! trade-off curves, enumerable from one place.
//!
//! Every entry is a full-scale [`SweepSpec`]; `--smoke` variants come
//! from [`SweepSpec::smoke`]. The report campaigns (`tradeoff`,
//! `lowerbound/theorem13`, `jamming-robustness`,
//! `constant-jamming-growth`) are the sections of `RESULTS.md`; the rest
//! back the thin `exp_*` wrapper binaries.

use crate::scenario::registry::cross_model_roster;
use crate::scenario::spec::{
    AdversarySpec, AlgoSpec, ArrivalSpec, BaselineSpec, BudgetSpec, ChannelSpec, CurveSpec,
    JammingSpec, ParamsSpec, ScenarioSpec,
};

use super::sweep::{Axis, SweepSpec};

/// The channel axis the `cd-vs-nocd` campaigns sweep: the paper's model,
/// ternary collision detection (listening priced at 0.2 — a CD radio must
/// decode every slot), and ack-only (listening free — the radio can sleep
/// between attempts).
fn channel_axis() -> Axis {
    Axis::channels([
        ChannelSpec::no_collision_detection().with_listen_cost(0.1),
        ChannelSpec::collision_detection().with_listen_cost(0.2),
        ChannelSpec::ack_only(),
    ])
}

/// One registry entry.
#[derive(Debug, Clone, Copy)]
pub struct CampaignEntry {
    /// Registry key.
    pub name: &'static str,
    /// What the campaign sweeps.
    pub summary: &'static str,
}

/// The campaign names with one-line summaries.
pub fn entries() -> Vec<CampaignEntry> {
    vec![
        CampaignEntry {
            name: "tradeoff",
            summary: "Theorem 1.2: the (f,g) trade-off across the admissible g spectrum at the critical budget",
        },
        CampaignEntry {
            name: "lowerbound/theorem13",
            summary: "Theorem 1.3: channel accesses forced before the first success, across horizons",
        },
        CampaignEntry {
            name: "jamming-robustness",
            summary: "batch drain and delivery vs jamming rate, protocol vs baselines",
        },
        CampaignEntry {
            name: "constant-jamming-growth",
            summary: "headline Θ(t/log t): deliveries at dyadic checkpoints under 25% jamming",
        },
        CampaignEntry {
            name: "lowerbound/lemma41-flood",
            summary: "Lemma 4.1: the flood that zeroes out aggressive senders",
        },
        CampaignEntry {
            name: "cd-vs-nocd/batch",
            summary: "the same clean batch under no-CD, ternary-CD, and ack-only feedback",
        },
        CampaignEntry {
            name: "cd-vs-nocd/jamming",
            summary: "the same 25%-jammed batch across feedback models (jam reads as noise under CD)",
        },
        CampaignEntry {
            name: "batch-scaling",
            summary: "batch drain time vs n across jamming rates (worst-case tuning)",
        },
        CampaignEntry {
            name: "batch-scaling-clean",
            summary: "batch drain time vs n, clean channel, constant-throughput tuning",
        },
        CampaignEntry {
            name: "mega-batch-scaling",
            summary: "skip-ahead batch drain up to n = 10^6 smoothed-BEB nodes (exact is infeasible)",
        },
    ]
}

/// The campaign names.
pub fn names() -> Vec<&'static str> {
    entries().into_iter().map(|e| e.name).collect()
}

/// Resolve a campaign name to its sweep.
pub fn lookup(name: &str) -> Option<SweepSpec> {
    let sweep = match name {
        "tradeoff" => SweepSpec::new(
            "tradeoff",
            "Theorem 1.2 — the (f,g) trade-off at the critical budget",
            ScenarioSpec::new("tradeoff")
                .algo(AlgoSpec::cjz_constant_jamming())
                .arrivals(ArrivalSpec::saturated())
                .jamming(JammingSpec::random(0.4))
                .budget(BudgetSpec::critical(ParamsSpec::constant_jamming(), 4.0))
                .fixed_horizon(1 << 14)
                .seeds(3),
        )
        .axis(Axis::g_spectrum()),
        "lowerbound/theorem13" => SweepSpec::new(
            "lowerbound/theorem13",
            "Theorem 1.3 — channel accesses forced before the first success",
            ScenarioSpec::new("lowerbound/theorem13")
                .algo(AlgoSpec::cjz_constant_jamming())
                .adversary(AdversarySpec::Theorem13 {
                    horizon: 256,
                    g_of_t: 2.0,
                })
                .until_drained(1024)
                .seeds(5),
        )
        .axis(Axis::horizons_pow2(8..=14)),
        "jamming-robustness" => SweepSpec::new(
            "jamming-robustness",
            "Batch robustness — drain and delivery vs jamming rate",
            ScenarioSpec::batch(128, 0.0)
                .algos([
                    AlgoSpec::cjz_constant_jamming(),
                    AlgoSpec::Baseline(BaselineSpec::BinaryExponential),
                    AlgoSpec::Baseline(BaselineSpec::Sawtooth),
                ])
                .until_drained(300_000)
                .seeds(5),
        )
        .axis(Axis::jam([0.0, 0.1, 0.25, 0.4])),
        "constant-jamming-growth" => SweepSpec::new(
            "constant-jamming-growth",
            "Headline Θ(t/log t) — deliveries under 25% jamming at the critical load",
            ScenarioSpec::new("constant-jamming-growth")
                .algos([
                    AlgoSpec::cjz_constant_jamming(),
                    AlgoSpec::Baseline(BaselineSpec::SmoothedBeb),
                    AlgoSpec::Baseline(BaselineSpec::BinaryExponential),
                    AlgoSpec::Baseline(BaselineSpec::Sawtooth),
                ])
                .arrivals(ArrivalSpec::saturated())
                .jamming(JammingSpec::random(0.25))
                .budget(BudgetSpec {
                    params: ParamsSpec::constant_jamming(),
                    arrivals: CurveSpec::CriticalArrivals { scale: 2.0 },
                    jams: CurveSpec::Unlimited,
                })
                .fixed_horizon(1 << 17)
                .seeds(3),
        ),
        "lowerbound/lemma41-flood" => SweepSpec::new(
            "lowerbound/lemma41-flood",
            "Lemma 4.1 — the flood that punishes aggressive senders",
            ScenarioSpec::new("lowerbound/lemma41-flood")
                .adversary(AdversarySpec::Lemma41 {
                    horizon: 1 << 14,
                    batch_per_slot: 8,
                    random_total: (1 << 14) / 64,
                })
                .fixed_horizon(1 << 14)
                .seeds(5),
        )
        .axis(Axis::algos([
            AlgoSpec::Baseline(BaselineSpec::Aloha(0.3)),
            AlgoSpec::Baseline(BaselineSpec::Aloha(0.05)),
            AlgoSpec::cjz_constant_jamming(),
        ])),
        "cd-vs-nocd/batch" => SweepSpec::new(
            "cd-vs-nocd/batch",
            "Feedback models — the same clean batch under no-CD, CD, and ack-only",
            ScenarioSpec::batch(128, 0.0)
                .algos(cross_model_roster())
                .until_drained(300_000)
                .seeds(5),
        )
        .axis(channel_axis()),
        "cd-vs-nocd/jamming" => SweepSpec::new(
            "cd-vs-nocd/jamming",
            "Feedback models — the same 25%-jammed batch across feedback regimes",
            ScenarioSpec::batch(128, 0.25)
                .algos(cross_model_roster())
                .until_drained(300_000)
                .seeds(5),
        )
        .axis(channel_axis()),
        "batch-scaling" => SweepSpec::new(
            "batch-scaling",
            "Batch drain scaling — slots to drain n nodes vs n, per jamming rate",
            ScenarioSpec::batch(64, 0.0)
                .until_drained(200_000_000)
                .seeds(5),
        )
        .axis(Axis::jam([0.0, 0.1, 0.25]))
        .axis(Axis::n((6..=12).map(|p| 1u32 << p))),
        "batch-scaling-clean" => SweepSpec::new(
            "batch-scaling-clean",
            "Batch drain scaling — clean channel, constant-throughput tuning",
            ScenarioSpec::batch(64, 0.0)
                .algos([AlgoSpec::cjz_constant_throughput()])
                .until_drained(200_000_000)
                .seeds(5),
        )
        .axis(Axis::n((6..=12).map(|p| 1u32 << p))),
        // Mega-scale: the sparse engine sweeps n into the millions. Each
        // point couples the population with a drain cap that scales with
        // it (the base's `until_drained` is rewritten by Edit::Horizon's
        // 4x headroom rule).
        "mega-batch-scaling" => {
            let points = [10_000u32, 100_000, 1_000_000];
            SweepSpec::new(
                "mega-batch-scaling",
                "Mega-scale batch drain — skip-ahead execution, n up to 10^6",
                crate::scenario::registry::lookup("sparse-batch/10000")
                    .expect("sparse-batch registry family")
                    .seeds(1),
            )
            .axis(Axis::new(
                "n",
                points
                    .into_iter()
                    .map(|n| {
                        super::sweep::AxisPoint::coupled(
                            n.to_string(),
                            [
                                super::sweep::Edit::N(n),
                                super::sweep::Edit::Horizon(16 * u64::from(n)),
                            ],
                        )
                    })
                    .collect(),
            ))
        }
        _ => return None,
    };
    Some(sweep)
}

/// The campaigns whose sections make up `RESULTS.md`, in render order.
pub fn report_campaigns() -> Vec<&'static str> {
    vec![
        "tradeoff",
        "lowerbound/theorem13",
        "jamming-robustness",
        "constant-jamming-growth",
        "cd-vs-nocd/batch",
        "cd-vs-nocd/jamming",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_resolves_with_nonempty_grid() {
        for entry in entries() {
            let sweep = lookup(entry.name)
                .unwrap_or_else(|| panic!("campaign {} must resolve", entry.name));
            assert_eq!(sweep.name, entry.name);
            assert!(sweep.cell_count() >= 1);
            assert!(
                sweep.cells().iter().all(|c| !c.spec.algos.is_empty()),
                "{} has an empty roster cell",
                entry.name
            );
        }
        assert!(lookup("no-such-campaign").is_none());
    }

    #[test]
    fn report_campaigns_are_registered() {
        for name in report_campaigns() {
            assert!(lookup(name).is_some(), "report campaign {name} missing");
        }
    }

    #[test]
    fn cd_vs_nocd_campaigns_sweep_the_channel_axis() {
        use contention_sim::ChannelModel;
        for name in ["cd-vs-nocd/batch", "cd-vs-nocd/jamming"] {
            let sweep = lookup(name).unwrap();
            assert_eq!(sweep.axes.len(), 1);
            assert_eq!(sweep.axes[0].name, "channel");
            let cells = sweep.cells();
            assert_eq!(cells.len(), 3);
            let models: Vec<ChannelModel> = cells.iter().map(|c| c.spec.channel.model).collect();
            assert_eq!(
                models,
                vec![
                    ChannelModel::NoCollisionDetection,
                    ChannelModel::CollisionDetection,
                    ChannelModel::AckOnly,
                ],
                "{name}"
            );
            // Every cell runs the identical workload and roster: only the
            // feedback model differs.
            for cell in &cells {
                assert_eq!(cell.spec.algos, cells[0].spec.algos, "{name}");
                assert_eq!(cell.spec.adversary, cells[0].spec.adversary, "{name}");
            }
        }
    }

    #[test]
    fn every_campaign_round_trips_through_json() {
        for entry in entries() {
            let sweep = lookup(entry.name).unwrap();
            let parsed = SweepSpec::from_json_str(&sweep.to_json_string())
                .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
            assert_eq!(parsed, sweep, "{} changed across round-trip", entry.name);
        }
    }
}
