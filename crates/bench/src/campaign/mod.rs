//! The campaign subsystem: parameter sweeps as data, regenerating the
//! paper's trade-off *curves* rather than single points.
//!
//! PR 1 made one experiment declarative ([`ScenarioSpec`]); a campaign
//! declares a *family* of them: a [`SweepSpec`] is a base scenario plus
//! axes over its fields (population, jamming rate, horizon, tolerance
//! function `g`, roster, channel-feedback model), expanded
//! cartesian-style into a deterministic grid. The [`CampaignRunner`] drives every (cell × algorithm × seed)
//! job through the work-stealing replicator with streaming (O(1)-memory)
//! aggregation, and the results flow out as ASCII/markdown tables, CSV,
//! JSONL, or the committed `RESULTS.md`.
//!
//! ```
//! use contention_bench::campaign::{Axis, CampaignRunner, SweepSpec};
//! use contention_bench::scenario::{AlgoSpec, ScenarioSpec};
//!
//! // Drain an 8-node batch at two jamming rates, 2 seeds each.
//! let sweep = SweepSpec::new(
//!     "demo",
//!     "Demo sweep",
//!     ScenarioSpec::batch(8, 0.0)
//!         .algos([AlgoSpec::cjz_constant_jamming()])
//!         .seeds(2)
//!         .until_drained(100_000),
//! )
//! .axis(Axis::jam([0.0, 0.25]));
//! assert_eq!(sweep.cell_count(), 2);
//!
//! // Sweeps serialize like scenarios do.
//! let json = sweep.to_json_string();
//! assert_eq!(SweepSpec::from_json_str(&json).unwrap(), sweep);
//!
//! let result = CampaignRunner::new(sweep).run();
//! assert_eq!(result.cells.len(), 2);
//! assert!(result.cells.iter().all(|c| c.drained_frac == 1.0));
//! ```
//!
//! * [`sweep`] — the data model ([`SweepSpec`], [`Axis`], [`Edit`]) and
//!   grid expansion;
//! * [`runner`] — execution: flat job list, work-stealing replication,
//!   streaming per-cell aggregation;
//! * [`registry`] — named campaigns (`tradeoff`, `lowerbound/theorem13`,
//!   `jamming-robustness`, …);
//! * [`writer`] — CSV and JSONL row writers;
//! * [`report`] — ASCII/markdown rendering and the `RESULTS.md`
//!   generator;
//! * [`json`] — `SweepSpec` serialization.
//!
//! [`ScenarioSpec`]: crate::scenario::ScenarioSpec

pub mod json;
pub mod registry;
pub mod report;
pub mod runner;
pub mod sweep;
pub mod writer;

pub use registry::{entries, lookup, names, report_campaigns, CampaignEntry};
pub use report::{cells_table, render_results_md, render_section, tradeoff_ratios};
pub use runner::{CampaignResult, CampaignRunner, CellResult};
pub use sweep::{Axis, AxisPoint, Cell, Edit, SweepSpec};
pub use writer::{csv_header, csv_row, jsonl_row, to_csv, to_jsonl, OrderedLineWriter};
