//! The sweep data model: parameter axes over [`ScenarioSpec`] fields and
//! their cartesian expansion into a deterministic grid of cells.
//!
//! A [`SweepSpec`] is a base scenario plus a list of [`Axis`]es. Each axis
//! holds an ordered list of [`AxisPoint`]s; each point carries one or more
//! [`Edit`]s that are applied *together* (so coupled parameters — e.g. the
//! trade-off campaign's `(g, jam-rate)` pairs — are one axis with
//! multi-edit points, while independent parameters are separate axes and
//! combine cartesian-style). Expansion order is row-major with the first
//! axis slowest, and nothing about it depends on thread count or hashing,
//! so the cell list — and hence every downstream table — is deterministic.

use contention_sim::Execution;

use crate::scenario::spec::{
    AdversarySpec, AlgoSpec, ArrivalSpec, ChannelSpec, GSpec, HorizonSpec, JammingSpec, RecordMode,
    ScenarioSpec,
};

/// One field edit applied to a [`ScenarioSpec`] by an axis point.
///
/// Edits are deliberately *semantic* rather than path-based: `N` means
/// "the population scale of whatever arrival process the base scenario
/// uses", so the same axis declaration works across batch, saturated,
/// bursty and uniform-random bases. Edits that do not apply to the base
/// (e.g. [`Edit::Rate`] on a batch arrival) are no-ops.
#[derive(Debug, Clone, PartialEq)]
pub enum Edit {
    /// Population scale: `Batch.count`, `Saturated.target`,
    /// `UniformRandom.total`, or `Bursty.size`.
    N(u32),
    /// Jamming intensity: replaces `Random`/`None` jamming with
    /// [`JammingSpec::random`] (0 collapses to none) and retunes
    /// `GilbertElliott.fraction` in place.
    Jam(f64),
    /// Horizon `t`: sets the scripted horizon of a lower-bound adversary
    /// (`Theorem13`/`Theorem42`/`Lemma41`), then `Fixed` horizons run
    /// exactly `t` slots while `UntilDrained` caps get `4·t` of drain
    /// headroom (the convention the lower-bound experiments use).
    Horizon(u64),
    /// Poisson arrival rate.
    Rate(f64),
    /// Retune the jamming-tolerance function: every Cjz-family roster
    /// entry, plus the budget and smoothness parameter blocks if present.
    G(GSpec),
    /// Replace the algorithm roster.
    Algos(Vec<AlgoSpec>),
    /// Replication count.
    Seeds(u64),
    /// Replace the channel-feedback model (and its listening cost) — the
    /// cross-model comparison axis.
    Channel(ChannelSpec),
    /// Replace the execution strategy (exact, skip-ahead, or
    /// bit-parallel) — the engine-comparison axis, and the knob
    /// mega-scale sweeps flip.
    Execution(Execution),
}

impl Edit {
    /// Apply the edit to a spec (in place).
    pub fn apply(&self, spec: &mut ScenarioSpec) {
        match self {
            Edit::N(n) => {
                if let AdversarySpec::Composite { arrival, .. } = &mut spec.adversary {
                    match arrival {
                        ArrivalSpec::Batch { count, .. } => *count = *n,
                        ArrivalSpec::Saturated { target, .. } => *target = Some(u64::from(*n)),
                        ArrivalSpec::UniformRandom { total, .. } => *total = u64::from(*n),
                        ArrivalSpec::Bursty { size, .. } => *size = *n,
                        _ => {}
                    }
                }
            }
            Edit::Jam(p) => {
                if let AdversarySpec::Composite { jamming, .. } = &mut spec.adversary {
                    match jamming {
                        JammingSpec::GilbertElliott { fraction, .. } => *fraction = *p,
                        JammingSpec::None | JammingSpec::Random { .. } => {
                            *jamming = JammingSpec::random(*p)
                        }
                        _ => {}
                    }
                }
            }
            Edit::Horizon(t) => {
                match &mut spec.adversary {
                    AdversarySpec::Theorem13 { horizon, .. }
                    | AdversarySpec::Theorem42 { horizon, .. }
                    | AdversarySpec::Lemma41 { horizon, .. } => *horizon = *t,
                    AdversarySpec::Composite { .. } => {}
                }
                spec.horizon = match spec.horizon {
                    HorizonSpec::Fixed { .. } => HorizonSpec::Fixed { slots: *t },
                    HorizonSpec::UntilDrained { .. } => HorizonSpec::UntilDrained {
                        max_slots: t.saturating_mul(4),
                    },
                };
            }
            Edit::Rate(r) => {
                if let AdversarySpec::Composite {
                    arrival: ArrivalSpec::Poisson { rate, .. },
                    ..
                } = &mut spec.adversary
                {
                    *rate = *r;
                }
            }
            Edit::G(g) => {
                for algo in &mut spec.algos {
                    match algo {
                        AlgoSpec::Cjz(p) | AlgoSpec::CjzNoSwap(p) | AlgoSpec::CjzOracle(p) => {
                            p.g = g.clone()
                        }
                        AlgoSpec::Baseline(_) => {}
                    }
                }
                if let Some(budget) = &mut spec.budget {
                    budget.params.g = g.clone();
                }
                if let Some(smooth) = &mut spec.smooth {
                    smooth.params.g = g.clone();
                }
            }
            Edit::Algos(roster) => spec.algos = roster.clone(),
            Edit::Seeds(s) => spec.seeds = (*s).max(1),
            Edit::Channel(c) => spec.channel = *c,
            Edit::Execution(e) => spec.execution = *e,
        }
    }
}

/// One point on an axis: a display label plus the edits applied together.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisPoint {
    /// Value label shown in axis columns (e.g. `64`, `2^12`, `log`).
    pub label: String,
    /// The coupled edits this point applies.
    pub edits: Vec<Edit>,
}

impl AxisPoint {
    /// A point with one edit.
    pub fn new(label: impl Into<String>, edit: Edit) -> Self {
        AxisPoint {
            label: label.into(),
            edits: vec![edit],
        }
    }

    /// A point applying several edits together.
    pub fn coupled(label: impl Into<String>, edits: impl IntoIterator<Item = Edit>) -> Self {
        AxisPoint {
            label: label.into(),
            edits: edits.into_iter().collect(),
        }
    }
}

/// A named, ordered list of [`AxisPoint`]s — one sweep dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// Axis name (column header in tables, e.g. `n`, `jam`, `t`, `g`).
    pub name: String,
    /// The points, in sweep order.
    pub points: Vec<AxisPoint>,
}

impl Axis {
    /// An axis from explicit points.
    pub fn new(name: impl Into<String>, points: Vec<AxisPoint>) -> Self {
        Axis {
            name: name.into(),
            points,
        }
    }

    /// Population axis over explicit sizes.
    pub fn n(values: impl IntoIterator<Item = u32>) -> Self {
        Axis::new(
            "n",
            values
                .into_iter()
                .map(|v| AxisPoint::new(v.to_string(), Edit::N(v)))
                .collect(),
        )
    }

    /// Jamming-rate axis over explicit probabilities.
    pub fn jam(values: impl IntoIterator<Item = f64>) -> Self {
        Axis::new(
            "jam",
            values
                .into_iter()
                .map(|v| AxisPoint::new(v.to_string(), Edit::Jam(v)))
                .collect(),
        )
    }

    /// Horizon axis over powers of two (labels `2^p`).
    pub fn horizons_pow2(powers: impl IntoIterator<Item = u32>) -> Self {
        Axis::new(
            "t",
            powers
                .into_iter()
                .map(|p| AxisPoint::new(format!("2^{p}"), Edit::Horizon(1u64 << p)))
                .collect(),
        )
    }

    /// The paper's admissible-`g` spectrum, each tuning coupled with the
    /// jamming rate it is meant to survive (the E1 pairing).
    pub fn g_spectrum() -> Self {
        let cases = [
            ("const", GSpec::Constant(2.0), 0.4),
            ("log", GSpec::Log, 0.25),
            ("log2", GSpec::PolyLog(2), 0.15),
            ("expsqrt", GSpec::ExpSqrtLog(1.0), 0.1),
        ];
        Axis::new(
            "g",
            cases
                .into_iter()
                .map(|(label, g, jam)| AxisPoint::coupled(label, [Edit::G(g), Edit::Jam(jam)]))
                .collect(),
        )
    }

    /// Channel-model axis: one point per feedback model, labelled by the
    /// model's stable name (`no-cd`, `cd`, `ack-only`).
    pub fn channels(channels: impl IntoIterator<Item = ChannelSpec>) -> Self {
        Axis::new(
            "channel",
            channels
                .into_iter()
                .map(|c| AxisPoint::new(c.name(), Edit::Channel(c)))
                .collect(),
        )
    }

    /// Execution-strategy axis: one point per strategy, labelled by the
    /// strategy's stable name (`exact`, `skip-ahead`, `bit-parallel`).
    pub fn executions(executions: impl IntoIterator<Item = Execution>) -> Self {
        Axis::new(
            "execution",
            executions
                .into_iter()
                .map(|e| AxisPoint::new(e.name(), Edit::Execution(e)))
                .collect(),
        )
    }

    /// Roster axis: each point runs a single algorithm (labelled by its
    /// display name). Named `roster` so the coordinate column never
    /// collides with the per-row `algo` metric column in CSV/tables.
    pub fn algos(algos: impl IntoIterator<Item = AlgoSpec>) -> Self {
        Axis::new(
            "roster",
            algos
                .into_iter()
                .map(|a| AxisPoint::new(a.name(), Edit::Algos(vec![a])))
                .collect(),
        )
    }
}

/// A declarative parameter sweep: a base scenario plus axes to expand.
///
/// Serializable (see [`SweepSpec::to_json_string`]) and executable (see
/// [`CampaignRunner`](super::runner::CampaignRunner)); named sweeps live
/// in the [campaign registry](super::registry).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Campaign name (registry key).
    pub name: String,
    /// Human heading used by report renderers.
    pub title: String,
    /// The scenario template every cell starts from.
    pub base: ScenarioSpec,
    /// Sweep dimensions (empty = a single cell: the base itself).
    pub axes: Vec<Axis>,
}

/// One expanded grid cell: the materialized scenario plus its coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// `(axis name, point label)` per axis, in axis order.
    pub coords: Vec<(String, String)>,
    /// The scenario with every coordinate edit applied.
    pub spec: ScenarioSpec,
}

impl SweepSpec {
    /// A sweep with no axes (a single cell).
    pub fn new(name: impl Into<String>, title: impl Into<String>, base: ScenarioSpec) -> Self {
        SweepSpec {
            name: name.into(),
            title: title.into(),
            base,
            axes: Vec::new(),
        }
    }

    /// Append an axis.
    pub fn axis(mut self, axis: Axis) -> Self {
        self.axes.push(axis);
        self
    }

    /// Override the base replication count (applies to every cell that no
    /// [`Edit::Seeds`] axis point overrides).
    pub fn seeds(mut self, seeds: u64) -> Self {
        self.base.seeds = seeds.max(1);
        self
    }

    /// Number of grid cells (product of axis lengths; 1 when axis-free).
    pub fn cell_count(&self) -> usize {
        self.axes.iter().map(|a| a.points.len().max(1)).product()
    }

    /// Expand the grid: row-major, first axis slowest. Each cell's
    /// scenario is the base with the point edits applied axis by axis and
    /// its name suffixed with the coordinates, e.g. `batch[jam=0.25,n=64]`.
    /// Campaign cells always run memory-bounded ([`RecordMode::Aggregate`]):
    /// the runner streams per-slot records through an online accumulator,
    /// so storing them would be pure overhead.
    pub fn cells(&self) -> Vec<Cell> {
        let total = self.cell_count();
        let mut out = Vec::with_capacity(total);
        for mut index in 0..total {
            // Decode the row-major index into one point per axis
            // (first axis slowest).
            let mut picks = Vec::with_capacity(self.axes.len());
            for axis in self.axes.iter().rev() {
                let len = axis.points.len().max(1);
                picks.push(index % len);
                index /= len;
            }
            picks.reverse();

            let mut spec = self.base.clone();
            let mut coords = Vec::with_capacity(self.axes.len());
            for (axis, &pick) in self.axes.iter().zip(&picks) {
                // A point-free axis (possible via hand-written JSON)
                // contributes nothing — consistent with cell_count(),
                // which counts it as 1.
                let Some(point) = axis.points.get(pick) else {
                    continue;
                };
                for edit in &point.edits {
                    edit.apply(&mut spec);
                }
                coords.push((axis.name.clone(), point.label.clone()));
            }
            if !coords.is_empty() {
                let suffix: Vec<String> = coords.iter().map(|(a, v)| format!("{a}={v}")).collect();
                spec.name = format!("{}[{}]", spec.name, suffix.join(","));
            }
            spec.record = RecordMode::Aggregate;
            out.push(Cell { coords, spec });
        }
        out
    }

    /// Shrink to smoke scale: the base scenario is smoke-shrunk and every
    /// axis keeps at most its first two points, so the grid structure —
    /// axis names, ordering, coupled edits — is exercised end-to-end in a
    /// fraction of the work. Deterministic, like everything else here.
    pub fn smoke(mut self) -> Self {
        self.base = self.base.smoke();
        for axis in &mut self.axes {
            axis.points.truncate(2);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::spec::{ArrivalSpec, BaselineSpec};

    fn base() -> ScenarioSpec {
        ScenarioSpec::batch(32, 0.0).seeds(2)
    }

    #[test]
    fn cartesian_cardinality_and_row_major_order() {
        let sweep = SweepSpec::new("s", "S", base())
            .axis(Axis::jam([0.0, 0.25]))
            .axis(Axis::n([8, 16, 32]));
        assert_eq!(sweep.cell_count(), 6);
        let cells = sweep.cells();
        assert_eq!(cells.len(), 6);
        // First axis slowest: jam=0 covers the first three cells.
        let labels: Vec<String> = cells
            .iter()
            .map(|c| format!("{},{}", c.coords[0].1, c.coords[1].1))
            .collect();
        assert_eq!(
            labels,
            ["0,8", "0,16", "0,32", "0.25,8", "0.25,16", "0.25,32"]
        );
        assert_eq!(cells[4].spec.name, "batch/32[jam=0.25,n=16]");
        // Expansion is pure: a second call yields the same grid.
        assert_eq!(sweep.cells(), cells);
    }

    #[test]
    fn empty_axis_is_a_no_op_not_a_panic() {
        // Hand-written JSON can declare an axis with zero points; the grid
        // must degrade to the base cell rather than index out of bounds.
        let sweep = SweepSpec::new("e", "E", base())
            .axis(Axis::new("empty", vec![]))
            .axis(Axis::n([4, 8]));
        assert_eq!(sweep.cell_count(), 2);
        let cells = sweep.cells();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].coords, vec![("n".to_string(), "4".to_string())]);
    }

    #[test]
    fn axis_free_sweep_is_a_single_base_cell() {
        let sweep = SweepSpec::new("solo", "Solo", base());
        let cells = sweep.cells();
        assert_eq!(cells.len(), 1);
        assert!(cells[0].coords.is_empty());
        assert_eq!(cells[0].spec.name, "batch/32");
        assert_eq!(cells[0].spec.record, RecordMode::Aggregate);
    }

    #[test]
    fn edits_apply_semantically() {
        let mut spec = base();
        Edit::N(64).apply(&mut spec);
        Edit::Jam(0.3).apply(&mut spec);
        match &spec.adversary {
            AdversarySpec::Composite { arrival, jamming } => {
                assert_eq!(*arrival, ArrivalSpec::Batch { at: 1, count: 64 });
                assert_eq!(*jamming, JammingSpec::Random { p: 0.3 });
            }
            other => panic!("unexpected adversary {other:?}"),
        }
        // Jam(0) collapses to no jamming, matching JammingSpec::random.
        Edit::Jam(0.0).apply(&mut spec);
        match &spec.adversary {
            AdversarySpec::Composite { jamming, .. } => assert_eq!(*jamming, JammingSpec::None),
            other => panic!("unexpected adversary {other:?}"),
        }
        Edit::Seeds(0).apply(&mut spec);
        assert_eq!(spec.seeds, 1, "seed count clamps to at least 1");
    }

    #[test]
    fn horizon_edit_drives_lowerbound_scripts() {
        let mut spec = ScenarioSpec::new("lb")
            .algo(AlgoSpec::cjz_constant_jamming())
            .adversary(AdversarySpec::Theorem13 {
                horizon: 1,
                g_of_t: 2.0,
            })
            .until_drained(1);
        Edit::Horizon(1024).apply(&mut spec);
        match &spec.adversary {
            AdversarySpec::Theorem13 { horizon, .. } => assert_eq!(*horizon, 1024),
            other => panic!("unexpected adversary {other:?}"),
        }
        assert_eq!(spec.horizon, HorizonSpec::UntilDrained { max_slots: 4096 });
        let mut fixed = spec.clone().fixed_horizon(1);
        Edit::Horizon(512).apply(&mut fixed);
        assert_eq!(fixed.horizon, HorizonSpec::Fixed { slots: 512 });
    }

    #[test]
    fn g_edit_retunes_protocol_and_budget() {
        let mut spec = ScenarioSpec::new("g")
            .algo(AlgoSpec::cjz_constant_jamming())
            .algo(AlgoSpec::Baseline(BaselineSpec::BinaryExponential))
            .arrivals(ArrivalSpec::saturated())
            .budget(crate::scenario::BudgetSpec::critical(
                crate::scenario::ParamsSpec::constant_jamming(),
                4.0,
            ));
        Edit::G(GSpec::Log).apply(&mut spec);
        match &spec.algos[0] {
            AlgoSpec::Cjz(p) => assert_eq!(p.g, GSpec::Log),
            other => panic!("unexpected algo {other:?}"),
        }
        assert_eq!(
            spec.algos[1],
            AlgoSpec::Baseline(BaselineSpec::BinaryExponential)
        );
        assert_eq!(spec.budget.as_ref().unwrap().params.g, GSpec::Log);
    }

    #[test]
    fn smoke_truncates_axes_and_shrinks_base() {
        let sweep = SweepSpec::new("s", "S", base().seeds(10))
            .axis(Axis::n([8, 16, 32, 64]))
            .smoke();
        assert_eq!(sweep.axes[0].points.len(), 2);
        assert_eq!(sweep.base.seeds, 1);
    }

    #[test]
    fn channel_axis_sweeps_the_feedback_model() {
        let axis = Axis::channels([
            ChannelSpec::no_collision_detection(),
            ChannelSpec::collision_detection().with_listen_cost(0.2),
            ChannelSpec::ack_only(),
        ]);
        assert_eq!(axis.name, "channel");
        let labels: Vec<&str> = axis.points.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, ["no-cd", "cd", "ack-only"]);
        let mut spec = base();
        axis.points[1].edits[0].apply(&mut spec);
        assert_eq!(
            spec.channel,
            ChannelSpec::collision_detection().with_listen_cost(0.2)
        );
    }

    #[test]
    fn g_spectrum_axis_couples_g_and_jam() {
        let axis = Axis::g_spectrum();
        assert_eq!(axis.points.len(), 4);
        assert_eq!(axis.points[1].label, "log");
        assert_eq!(axis.points[1].edits.len(), 2);
    }
}
