//! Minimal command-line argument handling shared by all experiment
//! binaries (no external parser crates — the offline dependency set is
//! deliberately small), plus the closest-match suggester the registry
//! CLIs use for unknown names.

/// Common experiment options.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpArgs {
    /// Shrink workloads for a fast smoke run (`--quick`).
    pub quick: bool,
    /// Number of seeds / replications (`--seeds N`).
    pub seeds: u64,
    /// Optional horizon override (`--t N`).
    pub horizon: Option<u64>,
    /// Emit CSV blocks after each table/figure (`--csv`).
    pub csv: bool,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            quick: false,
            seeds: 5,
            horizon: None,
            csv: false,
        }
    }
}

impl ExpArgs {
    /// Parse from an iterator of argument strings (excluding `argv[0]`).
    ///
    /// Unknown flags are ignored (so wrappers can pass extra options).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = ExpArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => out.quick = true,
                "--csv" => out.csv = true,
                "--seeds" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        out.seeds = v;
                    }
                }
                "--t" => {
                    out.horizon = it.next().and_then(|s| s.parse().ok());
                }
                _ => {}
            }
        }
        out.seeds = out.seeds.max(1);
        out
    }

    /// Parse from the process environment.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Scale a size down in quick mode.
    pub fn scaled(&self, full: u64, quick: u64) -> u64 {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// Levenshtein edit distance (iterative two-row DP; names are short).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Rank `candidates` by similarity to `input` and return the closest few.
///
/// Intended for "unknown registry name" CLI errors: registry names are
/// `base` or `base/param`, so the comparison uses whichever of the full
/// name and its base family is closer, and a candidate sharing the
/// input's base is always suggested. Returns at most 3 names, best first;
/// empty when nothing is remotely close (distance > half the input
/// length + 2, so arbitrary typo garbage stays suggestion-free).
pub fn closest_matches<'a>(
    input: &str,
    candidates: impl IntoIterator<Item = &'a str>,
) -> Vec<String> {
    let base = |s: &str| s.split('/').next().unwrap_or(s).to_string();
    let input_base = base(input);
    let cutoff = input.chars().count() / 2 + 2;
    let mut scored: Vec<(usize, String)> = candidates
        .into_iter()
        .map(|c| {
            let d = edit_distance(input, c)
                .min(edit_distance(&input_base, &base(c)) + 1)
                .min(edit_distance(input, &base(c)));
            (d, c.to_string())
        })
        .filter(|(d, _)| *d <= cutoff)
        .collect();
    scored.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    scored.truncate(3);
    scored.into_iter().map(|(_, c)| c).collect()
}

/// The first positional (non-flag) argument, skipping the *values* of
/// the named value-taking flags.
///
/// Shared by the registry CLIs so each binary declares its value-taking
/// flags in one place instead of hand-rolling the skip logic (and
/// silently misparsing a flag value as a registry name when a new flag
/// is added).
pub fn first_positional<'a>(args: &'a [String], value_flags: &[&str]) -> Option<&'a str> {
    let mut skip_value = false;
    for arg in args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if arg.starts_with("--") {
            skip_value = value_flags.contains(&arg.as_str());
            continue;
        }
        return Some(arg);
    }
    None
}

/// Shared "unknown registry name" exit for the registry CLIs: print the
/// error and the closest-match suggestions to stderr, then exit 2.
///
/// `kind` names the registry ("scenario", "campaign") in the message.
pub fn unknown_name_exit<'a>(
    kind: &str,
    name: &str,
    candidates: impl IntoIterator<Item = &'a str>,
) -> ! {
    eprintln!("unknown {kind} `{name}`; run without arguments to list the registry");
    let suggestions = closest_matches(name, candidates);
    if !suggestions.is_empty() {
        eprintln!("did you mean:");
        for s in suggestions {
            eprintln!("  {s}");
        }
    }
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> ExpArgs {
        ExpArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert!(!a.quick);
        assert_eq!(a.seeds, 5);
        assert_eq!(a.horizon, None);
        assert!(!a.csv);
    }

    #[test]
    fn flags() {
        let a = parse(&["--quick", "--seeds", "9", "--t", "4096", "--csv"]);
        assert!(a.quick);
        assert_eq!(a.seeds, 9);
        assert_eq!(a.horizon, Some(4096));
        assert!(a.csv);
    }

    #[test]
    fn bad_values_ignored() {
        let a = parse(&["--seeds", "zero", "--t", "NaN"]);
        assert_eq!(a.seeds, 5);
        assert_eq!(a.horizon, None);
    }

    #[test]
    fn seeds_clamped_to_one() {
        let a = parse(&["--seeds", "0"]);
        assert_eq!(a.seeds, 1);
    }

    #[test]
    fn scaled_sizes() {
        let quick = parse(&["--quick"]);
        let full = parse(&[]);
        assert_eq!(quick.scaled(1000, 10), 10);
        assert_eq!(full.scaled(1000, 10), 1000);
    }

    #[test]
    fn unknown_flags_ignored() {
        let a = parse(&["--wat", "--quick"]);
        assert!(a.quick);
    }

    #[test]
    fn first_positional_skips_flags_and_their_values() {
        let args: Vec<String> = ["--smoke", "--seeds", "5", "batch/64", "--csv", "out.csv"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            first_positional(&args, &["--seeds", "--csv"]),
            Some("batch/64")
        );
        // A value-taking flag not declared would misparse — declared, its
        // value is skipped even when it comes first.
        let args: Vec<String> = ["--channel", "cd", "bursty"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(first_positional(&args, &["--channel"]), Some("bursty"));
        assert_eq!(first_positional(&args, &[]), Some("cd"));
        assert_eq!(first_positional(&[], &[]), None);
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn closest_matches_ranks_typos() {
        let names = ["batch/32", "batch-jammed/256", "bursty", "tradeoff"];
        let got = closest_matches("bacth/32", names);
        assert_eq!(got.first().map(String::as_str), Some("batch/32"));
        // Same base family with a different parameter still matches.
        let got = closest_matches("batch/999x", names);
        assert!(got.iter().any(|s| s == "batch/32"), "{got:?}");
        // Garbage yields nothing.
        assert!(closest_matches("qqq", names).is_empty());
        // At most three suggestions.
        assert!(closest_matches("b", ["ba", "bb", "bc", "bd"]).len() <= 3);
    }
}
