//! Minimal command-line argument handling shared by all experiment
//! binaries (no external parser crates — the offline dependency set is
//! deliberately small).

/// Common experiment options.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpArgs {
    /// Shrink workloads for a fast smoke run (`--quick`).
    pub quick: bool,
    /// Number of seeds / replications (`--seeds N`).
    pub seeds: u64,
    /// Optional horizon override (`--t N`).
    pub horizon: Option<u64>,
    /// Emit CSV blocks after each table/figure (`--csv`).
    pub csv: bool,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            quick: false,
            seeds: 5,
            horizon: None,
            csv: false,
        }
    }
}

impl ExpArgs {
    /// Parse from an iterator of argument strings (excluding `argv[0]`).
    ///
    /// Unknown flags are ignored (so wrappers can pass extra options).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = ExpArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => out.quick = true,
                "--csv" => out.csv = true,
                "--seeds" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        out.seeds = v;
                    }
                }
                "--t" => {
                    out.horizon = it.next().and_then(|s| s.parse().ok());
                }
                _ => {}
            }
        }
        out.seeds = out.seeds.max(1);
        out
    }

    /// Parse from the process environment.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Scale a size down in quick mode.
    pub fn scaled(&self, full: u64, quick: u64) -> u64 {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> ExpArgs {
        ExpArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert!(!a.quick);
        assert_eq!(a.seeds, 5);
        assert_eq!(a.horizon, None);
        assert!(!a.csv);
    }

    #[test]
    fn flags() {
        let a = parse(&["--quick", "--seeds", "9", "--t", "4096", "--csv"]);
        assert!(a.quick);
        assert_eq!(a.seeds, 9);
        assert_eq!(a.horizon, Some(4096));
        assert!(a.csv);
    }

    #[test]
    fn bad_values_ignored() {
        let a = parse(&["--seeds", "zero", "--t", "NaN"]);
        assert_eq!(a.seeds, 5);
        assert_eq!(a.horizon, None);
    }

    #[test]
    fn seeds_clamped_to_one() {
        let a = parse(&["--seeds", "0"]);
        assert_eq!(a.seeds, 1);
    }

    #[test]
    fn scaled_sizes() {
        let quick = parse(&["--quick"]);
        let full = parse(&[]);
        assert_eq!(quick.scaled(1000, 10), 10);
        assert_eq!(full.scaled(1000, 10), 1000);
    }

    #[test]
    fn unknown_flags_ignored() {
        let a = parse(&["--wat", "--quick"]);
        assert!(a.quick);
    }
}
