//! Windowed backoff primitives: binary exponential, polynomial, linear.
//!
//! The classical (Ethernet-style) implementation of backoff: the node picks
//! one uniformly random slot in its current *window*, transmits there, and —
//! absent a success — moves to the next, larger window. Window growth
//! distinguishes the family:
//!
//! * binary exponential: `|W_k| = 2^k` (doubling after each failure),
//! * polynomial: `|W_k| = (k+1)^e`,
//! * linear: `|W_k| = k+1`.
//!
//! Without collision detection a node cannot tell *why* its attempt failed;
//! the windowed discipline only relies on the absence of its own success,
//! which it knows (it would have left the system otherwise).

use rand::Rng;
use rand::RngCore;

/// Window growth policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowGrowth {
    /// `|W_k| = 2^k` — binary exponential backoff.
    Binary,
    /// `|W_k| = (k+1)^e` (rounded up) — polynomial backoff.
    Polynomial(f64),
    /// `|W_k| = k+1` — linear backoff.
    Linear,
}

impl WindowGrowth {
    /// Length of window `k` (0-based), always ≥ 1, saturating at `2^62`.
    pub fn window_len(&self, k: u32) -> u64 {
        const CAP: u64 = 1 << 62;
        match self {
            WindowGrowth::Binary => 1u64 << k.min(62),
            WindowGrowth::Polynomial(e) => {
                let v = ((k as f64) + 1.0).powf(*e).ceil();
                if v.is_finite() && v < CAP as f64 {
                    (v as u64).max(1)
                } else {
                    CAP
                }
            }
            WindowGrowth::Linear => u64::from(k) + 1,
        }
    }

    /// Label for reports.
    pub fn label(&self) -> String {
        match self {
            WindowGrowth::Binary => "binary".to_string(),
            WindowGrowth::Polynomial(e) => format!("poly({e})"),
            WindowGrowth::Linear => "linear".to_string(),
        }
    }
}

/// Driver for windowed backoff over an abstract slot sequence.
///
/// # Examples
///
/// ```
/// use contention_backoff::window::WindowBackoff;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(5);
/// let mut beb = WindowBackoff::binary();
/// // Window 0 has a single slot: the first call always sends.
/// assert_eq!(beb.window_len(), 1);
/// assert!(beb.next(&mut rng));
/// // Each subsequent window doubles and contains exactly one send.
/// assert_eq!(beb.window_len(), 2);
/// let sends: u64 = (0..6).map(|_| u64::from(beb.next(&mut rng))).sum();
/// assert_eq!(sends, 2); // windows of length 2 and 4
/// ```
#[derive(Debug, Clone)]
pub struct WindowBackoff {
    growth: WindowGrowth,
    window: u32,
    pos: u64,
    chosen: Option<u64>,
    total_sends: u64,
}

impl WindowBackoff {
    /// Fresh backoff starting in window 0.
    pub fn new(growth: WindowGrowth) -> Self {
        WindowBackoff {
            growth,
            window: 0,
            pos: 0,
            chosen: None,
            total_sends: 0,
        }
    }

    /// Binary exponential backoff.
    pub fn binary() -> Self {
        Self::new(WindowGrowth::Binary)
    }

    /// Polynomial backoff with exponent `e`.
    pub fn polynomial(e: f64) -> Self {
        Self::new(WindowGrowth::Polynomial(e))
    }

    /// Current window index.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Length of the current window.
    pub fn window_len(&self) -> u64 {
        self.growth.window_len(self.window)
    }

    /// Total broadcasts so far.
    pub fn total_sends(&self) -> u64 {
        self.total_sends
    }

    /// The growth policy.
    pub fn growth(&self) -> WindowGrowth {
        self.growth
    }

    /// Advance one slot; returns whether the node transmits.
    pub fn next<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> bool {
        if self.pos == 0 {
            let len = self.window_len();
            self.chosen = Some(rng.gen_range(0..len));
        }
        let send = self.chosen == Some(self.pos);
        if send {
            self.total_sends += 1;
        }
        self.pos += 1;
        if self.pos >= self.window_len() {
            self.pos = 0;
            self.window = self.window.saturating_add(1);
        }
        send
    }

    /// Restart from window 0 (used by re-synchronizing protocol variants).
    pub fn reset(&mut self) {
        self.window = 0;
        self.pos = 0;
        self.chosen = None;
    }

    /// Probability that the next [`next`](Self::next) call transmits: at
    /// a window start the slot is drawn uniformly (`1/|W|`); mid-window
    /// the decision is already determined (0 or 1).
    pub fn next_send_prob(&self) -> f64 {
        if self.pos == 0 {
            1.0 / self.window_len() as f64
        } else if self.chosen == Some(self.pos) {
            1.0
        } else {
            0.0
        }
    }

    /// Skip-ahead counterpart of [`next`](Self::next): sample and consume
    /// the slots up to and including the next transmission, bounded by
    /// `within` slots.
    ///
    /// Returns `Some(gap)` when the next transmission happens after
    /// `gap` silent slots (`gap < within`; state advances `gap + 1`
    /// slots), or `None` when no transmission occurs within the bound
    /// (state advances exactly `within` slots). One uniform draw per
    /// window visited — the same draws [`next`](Self::next) makes — so
    /// the transmission pattern is distribution-identical.
    pub fn next_send_within<R: RngCore + ?Sized>(
        &mut self,
        within: u64,
        rng: &mut R,
    ) -> Option<u64> {
        let mut left = within;
        let mut gap = 0u64;
        while left > 0 {
            let len = self.window_len();
            if self.pos == 0 {
                self.chosen = Some(rng.gen_range(0..len));
            }
            let chosen = self.chosen.expect("chosen drawn at window start");
            if chosen >= self.pos {
                // The window's transmission is still ahead.
                let offset = chosen - self.pos;
                if offset < left {
                    gap += offset;
                    self.total_sends += 1;
                    self.pos = chosen + 1;
                    if self.pos >= len {
                        self.pos = 0;
                        self.window = self.window.saturating_add(1);
                    }
                    return Some(gap);
                }
                // Bound ends before the transmission: stay mid-window
                // (chosen < len, so no wrap is possible here).
                self.pos += left;
                return None;
            }
            // Already transmitted this window: burn the remainder.
            let rest = len - self.pos;
            if rest > left {
                self.pos += left;
                return None;
            }
            gap += rest;
            left -= rest;
            self.pos = 0;
            self.window = self.window.saturating_add(1);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn window_lengths() {
        assert_eq!(WindowGrowth::Binary.window_len(0), 1);
        assert_eq!(WindowGrowth::Binary.window_len(10), 1024);
        assert_eq!(WindowGrowth::Linear.window_len(0), 1);
        assert_eq!(WindowGrowth::Linear.window_len(9), 10);
        assert_eq!(WindowGrowth::Polynomial(2.0).window_len(0), 1);
        assert_eq!(WindowGrowth::Polynomial(2.0).window_len(3), 16);
        // Saturation.
        assert_eq!(WindowGrowth::Binary.window_len(200), 1 << 62);
        assert_eq!(WindowGrowth::Polynomial(100.0).window_len(1000), 1 << 62);
    }

    #[test]
    fn exactly_one_send_per_window() {
        let mut b = WindowBackoff::binary();
        let mut r = rng(2);
        // Windows 0..=9 span 2^10 - 1 slots.
        let mut per_window = vec![0u64; 10];
        for _ in 0..((1u64 << 10) - 1) {
            let w = b.window() as usize;
            if b.next(&mut r) {
                per_window[w] += 1;
            }
        }
        assert_eq!(per_window, vec![1; 10]);
        assert_eq!(b.total_sends(), 10);
    }

    #[test]
    fn first_slot_always_sends() {
        // Window 0 has length 1.
        for seed in 0..10 {
            let mut b = WindowBackoff::binary();
            assert!(b.next(&mut rng(seed)));
        }
    }

    #[test]
    fn polynomial_windows_grow_slower() {
        let mut bin = WindowBackoff::binary();
        let mut pol = WindowBackoff::polynomial(2.0);
        let mut r1 = rng(1);
        let mut r2 = rng(1);
        // After many slots, the polynomial walker is in a much later window.
        for _ in 0..100_000 {
            bin.next(&mut r1);
            pol.next(&mut r2);
        }
        assert!(pol.window() > bin.window());
    }

    #[test]
    fn reset_restarts_window_zero() {
        let mut b = WindowBackoff::binary();
        let mut r = rng(5);
        for _ in 0..100 {
            b.next(&mut r);
        }
        assert!(b.window() > 0);
        b.reset();
        assert_eq!(b.window(), 0);
        assert!(b.next(&mut r), "window 0 has length 1 → immediate send");
    }

    #[test]
    fn growth_accessor_and_labels() {
        assert_eq!(WindowBackoff::binary().growth(), WindowGrowth::Binary);
        assert_eq!(WindowGrowth::Binary.label(), "binary");
        assert_eq!(WindowGrowth::Polynomial(2.0).label(), "poly(2)");
        assert_eq!(WindowGrowth::Linear.label(), "linear");
    }

    #[test]
    fn determinism() {
        let run = |seed| {
            let mut b = WindowBackoff::polynomial(3.0);
            let mut r = rng(seed);
            (0..2000).map(|_| b.next(&mut r)).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    /// Both APIs draw one uniform per window in the same order, so under
    /// the same seed the transmission slots must match *exactly* — even
    /// when the skip-ahead bound truncates mid-window.
    #[test]
    fn next_send_within_replays_next_exactly() {
        for growth in [
            WindowGrowth::Binary,
            WindowGrowth::Polynomial(2.0),
            WindowGrowth::Linear,
        ] {
            const HORIZON: u64 = 4000;
            let mut dense = WindowBackoff::new(growth);
            let mut rd = rng(42);
            let dense_sends: Vec<u64> = (0..HORIZON).filter(|_| dense.next(&mut rd)).collect();
            for chunk in [HORIZON, 7, 64] {
                let mut sparse = WindowBackoff::new(growth);
                let mut rs = rng(42);
                let mut sends = Vec::new();
                let mut slot = 0u64; // slots consumed so far
                while slot < HORIZON {
                    let within = chunk.min(HORIZON - slot);
                    match sparse.next_send_within(within, &mut rs) {
                        Some(gap) => {
                            sends.push(slot + gap);
                            slot += gap + 1;
                        }
                        None => slot += within,
                    }
                }
                assert_eq!(
                    sends,
                    dense_sends,
                    "growth {} chunk {chunk}",
                    growth.label()
                );
                assert_eq!(sparse.total_sends(), dense.total_sends());
            }
        }
    }

    #[test]
    fn next_send_prob_tracks_window_state() {
        let mut b = WindowBackoff::binary();
        let mut r = rng(1);
        // Window 0 (length 1): certain send.
        assert_eq!(b.next_send_prob(), 1.0);
        assert!(b.next(&mut r));
        // Window 1 start: uniform over 2 slots.
        assert_eq!(b.next_send_prob(), 0.5);
        let sent_first = b.next(&mut r);
        // Mid-window the decision is determined.
        assert_eq!(b.next_send_prob(), if sent_first { 0.0 } else { 1.0 });
    }
}
