//! Multiplicative-increase / multiplicative-decrease (MIMD) primitives
//! driven by *explicit channel signals*.
//!
//! The classical drivers in this crate ([`WindowBackoff`], [`Schedule`])
//! are oblivious: they advance on a fixed program regardless of what the
//! channel reports, because under the paper's no-collision-detection model
//! failure feedback carries no information. Collision-detection channels
//! change that: a listener can tell an *empty* slot from a *noisy* one, so
//! an algorithm can back off exactly when the channel is contended and
//! speed up exactly when it is idle. These primitives package that control
//! law; the protocol wrappers live in `contention-baselines`
//! (`cd-beb`, `cd-aloha`).
//!
//! Both drivers are pure state machines over `on_noise` / `on_clear`
//! signals and draw randomness only from caller-provided RNGs, so they
//! compose deterministically inside the simulator like everything else
//! here.
//!
//! [`WindowBackoff`]: crate::window::WindowBackoff
//! [`Schedule`]: crate::schedule::Schedule

use rand::{Rng, RngCore};

/// Hard cap on [`CollisionWindow`] growth: beyond this the expected wait
/// exceeds any horizon the experiments run.
const MAX_WINDOW: u64 = 1 << 32;

/// A collision-triggered contention window (Ethernet-style MIMD).
///
/// The driver counts down a uniformly drawn backoff inside the current
/// window and transmits when it reaches zero. The window *doubles* on
/// [`on_noise`](Self::on_noise) (the channel reported a collision — in
/// particular after the caller's own failed transmission) and *halves* on
/// [`on_clear`](Self::on_clear) (the channel was verifiably idle, so
/// contention is low).
///
/// # Examples
///
/// ```
/// use contention_backoff::CollisionWindow;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut rng = SmallRng::seed_from_u64(7);
/// let mut w = CollisionWindow::new();
/// assert!(w.next(&mut rng), "window 1: transmit immediately");
/// w.on_noise(); // collision: window doubles, backoff redrawn
/// assert_eq!(w.window(), 2);
/// w.on_clear(); // idle slot observed: window halves again
/// assert_eq!(w.window(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CollisionWindow {
    window: u64,
    remaining: u64,
    /// A pending noise signal: the redraw is deferred to the next
    /// [`next`](Self::next) call because signals arrive in `observe`
    /// context, where no RNG is available.
    redraw: bool,
}

impl Default for CollisionWindow {
    fn default() -> Self {
        Self::new()
    }
}

impl CollisionWindow {
    /// A fresh driver: window 1, transmitting at the first opportunity.
    pub fn new() -> Self {
        CollisionWindow {
            window: 1,
            remaining: 0,
            redraw: false,
        }
    }

    /// Current window size (≥ 1).
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Advance one slot: `true` means transmit now.
    pub fn next<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> bool {
        if self.redraw {
            self.remaining = rng.gen_range(0..self.window);
            self.redraw = false;
        }
        if self.remaining == 0 {
            true
        } else {
            self.remaining -= 1;
            false
        }
    }

    /// The channel reported noise (a collision, or the caller's own
    /// transmission failed): double the window and redraw the backoff.
    pub fn on_noise(&mut self) {
        self.window = (self.window * 2).min(MAX_WINDOW);
        self.redraw = true;
    }

    /// The channel was verifiably idle: halve the window (contention is
    /// low). The current countdown is clamped into the shrunk window so
    /// the driver never waits longer than one full window.
    pub fn on_clear(&mut self) {
        self.window = (self.window / 2).max(1);
        if !self.redraw {
            self.remaining = self.remaining.min(self.window - 1);
        }
    }
}

/// A MIMD *transmission probability* (collision-aware slotted ALOHA).
///
/// Halves the probability on [`on_noise`](Self::on_noise), doubles it on
/// [`on_clear`](Self::on_clear), clamped to `[min_p, max_p]`.
///
/// # Examples
///
/// ```
/// use contention_backoff::MimdProbability;
///
/// let mut p = MimdProbability::new(0.5, 1.0 / 1024.0, 1.0);
/// p.on_noise();
/// assert_eq!(p.prob(), 0.25);
/// p.on_clear();
/// p.on_clear();
/// assert_eq!(p.prob(), 1.0, "clamped at max_p");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MimdProbability {
    p: f64,
    min_p: f64,
    max_p: f64,
}

impl MimdProbability {
    /// A driver starting at `p0`, clamped to `[min_p, max_p]` forever.
    pub fn new(p0: f64, min_p: f64, max_p: f64) -> Self {
        let min_p = min_p.clamp(0.0, 1.0);
        let max_p = max_p.clamp(min_p, 1.0);
        MimdProbability {
            p: p0.clamp(min_p, max_p),
            min_p,
            max_p,
        }
    }

    /// Current transmission probability.
    pub fn prob(&self) -> f64 {
        self.p
    }

    /// Draw this slot's transmission decision.
    pub fn decide<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen_bool(self.p)
    }

    /// Noise heard: halve the probability.
    pub fn on_noise(&mut self) {
        self.p = (self.p / 2.0).max(self.min_p);
    }

    /// Idle slot heard: double the probability.
    pub fn on_clear(&mut self) {
        self.p = (self.p * 2.0).min(self.max_p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn collision_window_waits_within_window() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut w = CollisionWindow::new();
        assert!(w.next(&mut rng));
        // Grow a few times; after each noise the next transmission comes
        // within `window` slots.
        for _ in 0..6 {
            w.on_noise();
            let window = w.window();
            let mut waited = 0;
            while !w.next(&mut rng) {
                waited += 1;
                assert!(waited <= window, "waited past a full window");
            }
        }
        assert_eq!(w.window(), 64);
    }

    #[test]
    fn clear_signal_halves_and_clamps() {
        let mut w = CollisionWindow::new();
        w.on_noise();
        w.on_noise();
        assert_eq!(w.window(), 4);
        w.on_clear();
        assert_eq!(w.window(), 2);
        w.on_clear();
        w.on_clear();
        assert_eq!(w.window(), 1, "never shrinks below 1");
        // With window 1 the driver transmits every slot.
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(w.next(&mut rng));
        assert!(w.next(&mut rng));
    }

    #[test]
    fn window_growth_is_capped() {
        let mut w = CollisionWindow::new();
        for _ in 0..80 {
            w.on_noise();
        }
        assert_eq!(w.window(), MAX_WINDOW);
    }

    #[test]
    fn countdown_clamps_when_window_shrinks() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut w = CollisionWindow::new();
        for _ in 0..8 {
            w.on_noise();
        }
        // Materialize the redraw, then shrink hard: the pending wait must
        // clamp to the new window.
        let _ = w.next(&mut rng);
        for _ in 0..10 {
            w.on_clear();
        }
        assert_eq!(w.window(), 1);
        let mut waited = 0;
        while !w.next(&mut rng) {
            waited += 1;
            assert!(waited <= 1);
        }
    }

    #[test]
    fn mimd_probability_clamps_both_ends() {
        let mut p = MimdProbability::new(0.25, 0.01, 0.5);
        for _ in 0..20 {
            p.on_noise();
        }
        assert_eq!(p.prob(), 0.01);
        for _ in 0..20 {
            p.on_clear();
        }
        assert_eq!(p.prob(), 0.5);
        // Degenerate construction stays in range.
        let q = MimdProbability::new(5.0, -1.0, 2.0);
        assert!((0.0..=1.0).contains(&q.prob()));
    }

    #[test]
    fn mimd_decide_matches_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(11);
        let p = MimdProbability::new(0.3, 0.0, 1.0);
        let hits = (0..20_000).filter(|_| p.decide(&mut rng)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((0.25..0.35).contains(&frac), "{frac}");
    }
}
