//! The sub-logarithmic function machinery of the paper.
//!
//! The algorithm is parameterized by a jamming-tolerance function `g` with
//! `log g(x) = O(√(log x))` (Section 2.1). From `g` it derives
//!
//! ```text
//! f(x) = a·c₂·log x / log²(g(x)/a)
//! ```
//!
//! and the two batch schedules `h_ctrl(x) = c₃·log x / x`, `h_data(x) = 1/x`.
//!
//! [`GFunction`] provides the family of admissible `g`'s used throughout the
//! experiments; [`FFunction`] evaluates the derived `f`. All logarithms are
//! base 2 (the choice only shifts constants) and are clamped so that every
//! function is total, positive and finite for all inputs — small-`x`
//! pathologies are absorbed into the constants, exactly as the paper's
//! "sufficiently large" constants do.

use std::fmt;
use std::sync::Arc;

/// Base-2 logarithm clamped below at inputs ≤ 2 (so the result is ≥ 1).
///
/// The clamp keeps derived quantities (which divide by `log²`) finite on the
/// first few slots, where the asymptotic formulas are meaningless anyway.
#[inline]
pub fn log2c(x: f64) -> f64 {
    x.max(2.0).log2()
}

/// `√(log₂ x)`, clamped like [`log2c`].
#[inline]
pub fn sqrt_log2(x: f64) -> f64 {
    log2c(x).sqrt()
}

/// A jamming-tolerance function `g`.
///
/// The admissible range in Theorem 1.2 is `log g(x) = O(√(log x))`:
/// from constants (tolerating a constant fraction of jammed slots, the
/// worst case) up to `2^Θ(√log x)` (the largest jamming budget compatible
/// with constant throughput — Remark 2).
///
/// # Examples
///
/// ```
/// use contention_backoff::GFunction;
///
/// let g = GFunction::PolyLog(2);
/// assert_eq!(g.at(1 << 16), 256.0);       // (log₂ 2¹⁶)² = 16²
/// assert_eq!(g.label(), "g=log^2");
/// // Evaluation clamps to [1, ∞): early slots never see a sub-1 budget.
/// assert_eq!(GFunction::Log.eval(1.0), 1.0);
/// ```
#[derive(Clone)]
pub enum GFunction {
    /// `g(x) = c` — constant-fraction jamming tolerance; yields
    /// `f(x) = Θ(log x)` and throughput `Θ(1/log x)`.
    Constant(f64),
    /// `g(x) = log₂ x`.
    Log,
    /// `g(x) = (log₂ x)^k`.
    PolyLog(u32),
    /// `g(x) = 2^(c·√(log₂ x))` — the maximum admissible growth; yields
    /// constant `f` and hence constant throughput (Remark 2).
    ExpSqrtLog(f64),
    /// Arbitrary user-supplied function (validated only at use sites).
    Custom(Arc<dyn Fn(f64) -> f64 + Send + Sync>),
}

impl GFunction {
    /// Evaluate `g(x)`, clamped to `[1, ∞)` and finite.
    pub fn eval(&self, x: f64) -> f64 {
        let v = match self {
            GFunction::Constant(c) => *c,
            GFunction::Log => log2c(x),
            GFunction::PolyLog(k) => log2c(x).powi(*k as i32),
            GFunction::ExpSqrtLog(c) => (c * sqrt_log2(x)).exp2(),
            GFunction::Custom(f) => f(x),
        };
        if v.is_finite() {
            v.max(1.0)
        } else {
            1.0
        }
    }

    /// Evaluate at an integer slot count.
    #[inline]
    pub fn at(&self, t: u64) -> f64 {
        self.eval(t as f64)
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            GFunction::Constant(c) => format!("g=const({c})"),
            GFunction::Log => "g=log".to_string(),
            GFunction::PolyLog(k) => format!("g=log^{k}"),
            GFunction::ExpSqrtLog(c) => format!("g=2^({c}*sqrt(log))"),
            GFunction::Custom(_) => "g=custom".to_string(),
        }
    }
}

impl fmt::Debug for GFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

impl PartialEq for GFunction {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (GFunction::Constant(a), GFunction::Constant(b)) => a == b,
            (GFunction::Log, GFunction::Log) => true,
            (GFunction::PolyLog(a), GFunction::PolyLog(b)) => a == b,
            (GFunction::ExpSqrtLog(a), GFunction::ExpSqrtLog(b)) => a == b,
            _ => false,
        }
    }
}

/// The derived throughput function `f(x) = a·c₂·log₂ x / log₂²(g(x)/a)`.
///
/// `a` is the paper's global constant (also scaling the budget curves) and
/// `c₂` the backoff density constant from Lemma 3.3. Both default to 1 and
/// are calibrated empirically (see DESIGN.md §2).
///
/// # Examples
///
/// ```
/// use contention_backoff::{FFunction, GFunction};
///
/// // Constant g: f(x) = Θ(log x) — the worst-case trade-off endpoint.
/// let f = FFunction::from_g(GFunction::Constant(2.0));
/// assert_eq!(f.at(1 << 20), 20.0);
/// // Maximal g = 2^√log x: f collapses to a constant (clamped at 1).
/// let f = FFunction::from_g(GFunction::ExpSqrtLog(1.0));
/// assert!(f.at(1 << 20) <= 20.0 / 16.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FFunction {
    g: GFunction,
    a: f64,
    c2: f64,
}

impl FFunction {
    /// Build `f` from `g` with constants `a`, `c₂`.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `c2` is not strictly positive and finite.
    pub fn new(g: GFunction, a: f64, c2: f64) -> Self {
        assert!(a.is_finite() && a > 0.0, "a must be positive");
        assert!(c2.is_finite() && c2 > 0.0, "c2 must be positive");
        FFunction { g, a, c2 }
    }

    /// Build with default constants `a = 1`, `c₂ = 1`.
    pub fn from_g(g: GFunction) -> Self {
        Self::new(g, 1.0, 1.0)
    }

    /// Evaluate `f(x)` (clamped to `[1, ∞)`: an (f,g) bound with `f < 1`
    /// would be vacuous since each arrival occupies at least one slot).
    pub fn eval(&self, x: f64) -> f64 {
        let denom = log2c(self.g.eval(x) / self.a).max(1.0);
        let v = self.a * self.c2 * log2c(x) / (denom * denom);
        v.max(1.0)
    }

    /// Evaluate at an integer slot count.
    #[inline]
    pub fn at(&self, t: u64) -> f64 {
        self.eval(t as f64)
    }

    /// The per-stage send count `h(L) = f(L)/a` of the paper's
    /// `(f/a)`-backoff, rounded to an integer ≥ 1.
    pub fn backoff_send_count(&self, stage_len: u64) -> u64 {
        let h = self.eval(stage_len as f64) / self.a;
        (h.round() as u64).clamp(1, stage_len)
    }

    /// The underlying `g`.
    pub fn g(&self) -> &GFunction {
        &self.g
    }

    /// The constant `a`.
    pub fn a(&self) -> f64 {
        self.a
    }

    /// The constant `c₂`.
    pub fn c2(&self) -> f64 {
        self.c2
    }

    /// Label for reports.
    pub fn label(&self) -> String {
        format!("f[{} a={} c2={}]", self.g.label(), self.a, self.c2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2c_clamps_small_inputs() {
        assert_eq!(log2c(0.0), 1.0);
        assert_eq!(log2c(1.0), 1.0);
        assert_eq!(log2c(2.0), 1.0);
        assert_eq!(log2c(8.0), 3.0);
        assert_eq!(log2c(-5.0), 1.0);
    }

    #[test]
    fn sqrt_log2_matches() {
        assert!((sqrt_log2(16.0) - 2.0).abs() < 1e-12);
        assert_eq!(sqrt_log2(1.0), 1.0);
    }

    #[test]
    fn g_constant() {
        let g = GFunction::Constant(5.0);
        assert_eq!(g.eval(10.0), 5.0);
        assert_eq!(g.eval(1e9), 5.0);
        // Clamped to >= 1.
        assert_eq!(GFunction::Constant(0.1).eval(10.0), 1.0);
    }

    #[test]
    fn g_log_and_polylog() {
        assert_eq!(GFunction::Log.eval(1024.0), 10.0);
        assert_eq!(GFunction::PolyLog(2).eval(1024.0), 100.0);
        assert_eq!(GFunction::PolyLog(3).at(1024), 1000.0);
    }

    #[test]
    fn g_exp_sqrt_log() {
        // At x = 2^16: sqrt(log x) = 4, so g = 2^4 = 16 with c = 1.
        let g = GFunction::ExpSqrtLog(1.0);
        assert!((g.eval(65536.0) - 16.0).abs() < 1e-9);
        // c = 2 doubles the exponent.
        let g2 = GFunction::ExpSqrtLog(2.0);
        assert!((g2.eval(65536.0) - 256.0).abs() < 1e-6);
    }

    #[test]
    fn g_custom_and_nonfinite_guard() {
        let g = GFunction::Custom(Arc::new(|x| x / 2.0));
        assert_eq!(g.eval(10.0), 5.0);
        let bad = GFunction::Custom(Arc::new(|_| f64::NAN));
        assert_eq!(bad.eval(10.0), 1.0);
        let inf = GFunction::Custom(Arc::new(|_| f64::INFINITY));
        assert_eq!(inf.eval(10.0), 1.0);
    }

    #[test]
    fn g_labels() {
        assert_eq!(GFunction::Log.label(), "g=log");
        assert!(GFunction::Constant(2.0).label().contains("const"));
        assert!(format!("{:?}", GFunction::PolyLog(2)).contains("log^2"));
    }

    #[test]
    fn g_equality() {
        assert_eq!(GFunction::Log, GFunction::Log);
        assert_eq!(GFunction::Constant(2.0), GFunction::Constant(2.0));
        assert_ne!(GFunction::Constant(2.0), GFunction::Constant(3.0));
        assert_ne!(GFunction::Log, GFunction::PolyLog(1));
    }

    #[test]
    fn f_constant_g_gives_log_growth() {
        // g constant => denominator constant => f = Θ(log x).
        let f = FFunction::new(GFunction::Constant(2.0), 1.0, 1.0);
        let f10 = f.eval(1024.0);
        let f20 = f.eval(1024.0 * 1024.0);
        assert!(f20 > f10 * 1.8 && f20 < f10 * 2.2, "f10={f10} f20={f20}");
    }

    #[test]
    fn f_exp_sqrt_log_gives_constant() {
        // g = 2^√log x => log g = √log x => f = log x / log x = const.
        let f = FFunction::new(GFunction::ExpSqrtLog(1.0), 1.0, 1.0);
        let v1 = f.eval(1u64.wrapping_shl(16) as f64);
        let v2 = f.eval((1u64 << 30) as f64);
        let v3 = f.eval((1u64 << 60) as f64);
        assert!((v1 - v2).abs() / v1 < 0.2, "v1={v1} v2={v2}");
        assert!((v2 - v3).abs() / v2 < 0.2, "v2={v2} v3={v3}");
    }

    #[test]
    fn f_is_at_least_one() {
        let f = FFunction::from_g(GFunction::ExpSqrtLog(4.0));
        for t in [1u64, 2, 3, 10, 1000, 1 << 40] {
            assert!(f.at(t) >= 1.0);
        }
    }

    #[test]
    fn f_monotone_in_c2() {
        let lo = FFunction::new(GFunction::Log, 1.0, 1.0);
        let hi = FFunction::new(GFunction::Log, 1.0, 3.0);
        assert!(hi.eval(4096.0) > lo.eval(4096.0));
    }

    #[test]
    fn backoff_send_count_bounds() {
        let f = FFunction::new(GFunction::Constant(2.0), 1.0, 1.0);
        // Always within [1, stage_len].
        for k in 0..30 {
            let len = 1u64 << k;
            let c = f.backoff_send_count(len);
            assert!(c >= 1 && c <= len, "len={len} count={c}");
        }
        // Stage length 1 forces exactly one send.
        assert_eq!(f.backoff_send_count(1), 1);
    }

    #[test]
    fn backoff_send_count_grows_with_log_for_constant_g() {
        let f = FFunction::new(GFunction::Constant(2.0), 1.0, 1.0);
        assert!(f.backoff_send_count(1 << 20) > f.backoff_send_count(1 << 5));
    }

    #[test]
    #[should_panic(expected = "a must be positive")]
    fn f_rejects_bad_a() {
        let _ = FFunction::new(GFunction::Log, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "c2 must be positive")]
    fn f_rejects_bad_c2() {
        let _ = FFunction::new(GFunction::Log, 1.0, f64::NAN);
    }

    #[test]
    fn accessors() {
        let f = FFunction::new(GFunction::Log, 2.0, 3.0);
        assert_eq!(f.a(), 2.0);
        assert_eq!(f.c2(), 3.0);
        assert_eq!(*f.g(), GFunction::Log);
        assert!(f.label().contains("g=log"));
    }
}
