//! # contention-backoff
//!
//! Backoff primitives and function machinery for contention resolution,
//! implementing the subroutines of Chen–Jiang–Zheng (PODC 2021) plus the
//! classical baselines they are compared against:
//!
//! * [`hbackoff::HBackoff`] — the paper's stage-based `h`-backoff
//!   (adaptive; the jamming-resistant workhorse of Phases 1–2);
//! * [`hbatch::HBatch`] — the paper's `h`-batch (a probability schedule;
//!   instantiated as `h_ctrl = c₃·log x/x` and `h_data = 1/x` in Phase 3);
//! * [`window::WindowBackoff`] — classical windowed binary
//!   exponential / polynomial / linear backoff;
//! * [`sawtooth::Sawtooth`] — sawtooth (backon) backoff;
//! * [`schedule::Schedule`] — arbitrary non-adaptive probability schedules
//!   (the class ruled out by Theorem 4.2);
//! * [`lanes::LaneBatch`] — the bit-parallel form of `h`-batch: up to 64
//!   independent schedule copies advanced one lane word at a time;
//! * [`mimd`] — collision-*triggered* MIMD drivers
//!   ([`mimd::CollisionWindow`], [`mimd::MimdProbability`]) for
//!   collision-detection channel models, where failure feedback *does*
//!   carry information;
//! * [`functions`] — the sub-logarithmic `g` family and the derived
//!   `f(x) = Θ(log x / log² g(x))` of Theorem 1.2.
//!
//! All drivers advance one *channel slot* per call and draw exclusively from
//! a caller-provided RNG, so they compose deterministically inside the
//! simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod functions;
pub mod hbackoff;
pub mod hbatch;
pub mod lanes;
pub mod mimd;
pub mod sawtooth;
pub mod schedule;
pub mod window;

pub use functions::{log2c, sqrt_log2, FFunction, GFunction};
pub use hbackoff::{HBackoff, OnePerStage, SendCount};
pub use hbatch::HBatch;
pub use lanes::{LaneBatch, LaneDraws};
pub use mimd::{CollisionWindow, MimdProbability};
pub use sawtooth::Sawtooth;
pub use schedule::{bernoulli_threshold, threshold_send_mask, ProbTable, Schedule};
pub use window::{WindowBackoff, WindowGrowth};
