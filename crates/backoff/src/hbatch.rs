//! The `h`-batch subroutine (Section 2.1).
//!
//! > Let `h : ℕ⁺ → ℝ⁺`. A node runs `h`-batch starting from slot `l` if, for
//! > any `k ∈ ℕ⁺`, it sends with probability `min(1, h(k))` in slot
//! > `l − 1 + k`.
//!
//! This is a *non-adaptive* probability schedule (cf. Theorem 4.2) indexed
//! by the slots since the batch started. The paper instantiates it twice in
//! Phase 3: `h_ctrl(x) = c₃·log x / x` on the control channel and
//! `h_data(x) = 1/x` on the data channel.

use rand::Rng;
use rand::RngCore;

use crate::schedule::{walk_next_send, ProbTable, Schedule, SurvivalTable};

/// Driver for an `h`-batch over an abstract channel-slot sequence.
///
/// # Examples
///
/// ```
/// use contention_backoff::hbatch::HBatch;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// // The paper's data batch: p_k = min(1, 1/k).
/// let mut batch = HBatch::data();
/// assert_eq!(batch.next_prob(), 1.0); // slot 1 always sends
/// let mut rng = SmallRng::seed_from_u64(3);
/// assert!(batch.next(&mut rng));
/// assert_eq!(batch.next_prob(), 0.5); // slot 2 sends with 1/2
/// ```
#[derive(Debug, Clone)]
pub struct HBatch {
    schedule: Schedule,
    /// Interned prefix of the schedule's probabilities (empty when the
    /// schedule has none) — bit-identical to [`Schedule::prob`], fetched
    /// once per batch so the per-slot path skips transcendental
    /// re-evaluation and is a single bounds check.
    table: ProbTable,
    /// Interned log-survival prefix sums for skip-ahead sampling
    /// (`None` for closed-form or non-internable schedules).
    survival: Option<SurvivalTable>,
    /// Next slot index `k` (1-based) to be consumed.
    next_index: u64,
    total_sends: u64,
}

impl HBatch {
    /// Fresh batch; the next [`next`](Self::next) call is slot `k = 1`.
    pub fn new(schedule: Schedule) -> Self {
        HBatch {
            table: schedule.prob_table().unwrap_or_else(ProbTable::empty),
            survival: schedule.survival_table(),
            schedule,
            next_index: 1,
            total_sends: 0,
        }
    }

    /// The paper's data-channel batch (`h(x) = 1/x`), i.e. smoothed binary
    /// exponential backoff.
    pub fn data() -> Self {
        Self::new(Schedule::h_data())
    }

    /// The paper's control-channel batch (`h(x) = c₃·log x / x`).
    pub fn ctrl(c3: f64) -> Self {
        Self::new(Schedule::h_ctrl(c3))
    }

    /// The 1-based index of the next slot to be consumed.
    pub fn position(&self) -> u64 {
        self.next_index
    }

    /// Probability that the *next* slot sends.
    pub fn next_prob(&self) -> f64 {
        self.prob_at(self.next_index)
    }

    #[inline]
    fn prob_at(&self, i: u64) -> f64 {
        match self.table.get(i) {
            Some(p) => p,
            None => self.schedule.prob(i),
        }
    }

    /// Total broadcasts so far.
    pub fn total_sends(&self) -> u64 {
        self.total_sends
    }

    /// The underlying schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Advance one channel slot; returns whether the node sends in it.
    ///
    /// Generic over the RNG so monomorphizing callers (the engine's
    /// concrete per-node RNG) avoid virtual dispatch on every draw;
    /// `&mut dyn RngCore` callers keep working unchanged.
    ///
    /// Inside the interned table the Bernoulli check runs on precomputed
    /// integer thresholds (`(next_u64() >> 11) < ceil(p·2⁵³)`), which is
    /// outcome- and draw-identical to `rng.gen::<f64>() < p` under the
    /// standard 53-bit sampling convention — see
    /// [`ProbTable::threshold`](crate::schedule::ProbTable::threshold)
    /// and the `threshold_matches_float_compare` test.
    pub fn next<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> bool {
        let i = self.next_index;
        self.next_index = i + 1;
        let send = match self.table.threshold(i) {
            Some(crate::schedule::THRESHOLD_CERTAIN) => true, // p ≥ 1: no draw
            Some(0) => false,                                 // p ≤ 0: no draw
            Some(thr) => (rng.next_u64() >> 11) < thr,
            None => {
                let p = self.schedule.prob(i);
                p > 0.0 && (p >= 1.0 || rng.gen::<f64>() < p)
            }
        };
        if send {
            self.total_sends += 1;
        }
        send
    }

    /// Skip-ahead counterpart of [`next`](Self::next): sample and consume
    /// the slots up to and including the batch's next send, bounded by
    /// `within` slots.
    ///
    /// Returns `Some(gap)` when the next send happens after `gap`
    /// silent slots (`gap < within`; the batch advances `gap + 1`
    /// slots), or `None` when no send occurs within the bound (the batch
    /// advances exactly `within` slots). Distribution-identical to
    /// calling [`next`](Self::next) `within` times — constant schedules
    /// invert the geometric law in closed form, others invert the exact
    /// survival function via the interned [`SurvivalTable`] (binary
    /// search) or the per-slot walk for `Custom` schedules — but uses a
    /// single uniform draw, so the RNG stream differs.
    pub fn next_send_within<R: RngCore + ?Sized>(
        &mut self,
        within: u64,
        rng: &mut R,
    ) -> Option<u64> {
        if within == 0 {
            return None;
        }
        let start = self.next_index;
        let last = start.saturating_add(within - 1);
        // Reciprocal survival telescopes: ∏_{i=a..k}(1 − 1/i) = (a−1)/k,
        // so inversion is closed-form — O(1) with no table at any index.
        // This is the workhorse schedule (smoothed BEB / h_data) of every
        // mega-scale scenario.
        if let Schedule::Reciprocal = self.schedule {
            let hit = if start == 1 {
                Some(1) // p_1 = 1: certain send
            } else {
                let u = 1.0 - rng.gen::<f64>(); // (0, 1]
                                                // Smallest k with (start−1)/k < u, i.e. k > (start−1)/u.
                let kf = (start - 1) as f64 / u;
                if kf >= last as f64 {
                    None
                } else {
                    Some(((kf.floor() as u64) + 1).clamp(start, last))
                }
            };
            return self.consume(hit, start, last);
        }
        let hit = if let Schedule::Constant(p) = self.schedule {
            if p >= 1.0 {
                Some(start)
            } else if p <= 0.0 {
                None
            } else {
                // Geometric inversion: gap = ⌊ln u / ln(1−p)⌋.
                let u = 1.0 - rng.gen::<f64>(); // (0, 1]
                let gap = u.ln() / (-p).ln_1p();
                if gap.is_finite() && gap < within as f64 {
                    Some(start + gap as u64)
                } else {
                    None
                }
            }
        } else {
            let u = 1.0 - rng.gen::<f64>(); // (0, 1]
            let ln_u = u.ln();
            match &self.survival {
                Some(table) => table.next_send(start, last, ln_u),
                None => walk_next_send(&self.schedule, start, last, ln_u),
            }
        };
        self.consume(hit, start, last)
    }

    /// Advance the batch state past a sampled outcome: to just after the
    /// send index, or past the whole bound on a no-send.
    fn consume(&mut self, hit: Option<u64>, start: u64, last: u64) -> Option<u64> {
        match hit {
            Some(k) => {
                debug_assert!((start..=last).contains(&k));
                let gap = k - start;
                self.next_index = k + 1;
                self.total_sends += 1;
                Some(gap)
            }
            None => {
                self.next_index = last.saturating_add(1);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn data_batch_sends_first_slot_always() {
        // h_data(1) = 1 => certain send.
        for seed in 0..10 {
            let mut b = HBatch::data();
            let mut r = rng(seed);
            assert!(b.next(&mut r));
        }
    }

    #[test]
    fn position_advances() {
        let mut b = HBatch::data();
        let mut r = rng(0);
        assert_eq!(b.position(), 1);
        b.next(&mut r);
        assert_eq!(b.position(), 2);
        assert!((b.next_prob() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn data_batch_send_rate_matches_harmonic_sum() {
        // E[sends over 1..n] = H_n ≈ ln n + γ. For n = 10000, H_n ≈ 9.79.
        let mut total = 0u64;
        const TRIALS: u64 = 60;
        for seed in 0..TRIALS {
            let mut b = HBatch::data();
            let mut r = rng(seed);
            for _ in 0..10_000 {
                if b.next(&mut r) {
                    total += 1;
                }
            }
        }
        let mean = total as f64 / TRIALS as f64;
        assert!((mean - 9.79).abs() < 1.0, "mean sends {mean}");
    }

    #[test]
    fn ctrl_batch_sends_more_than_data_batch() {
        let mut data_total = 0u64;
        let mut ctrl_total = 0u64;
        for seed in 0..30 {
            let mut d = HBatch::data();
            let mut c = HBatch::ctrl(4.0);
            let mut rd = rng(seed);
            let mut rc = rng(seed + 1000);
            for _ in 0..4096 {
                data_total += u64::from(d.next(&mut rd));
                ctrl_total += u64::from(c.next(&mut rc));
            }
        }
        assert!(
            ctrl_total > 2 * data_total,
            "ctrl {ctrl_total} vs data {data_total}"
        );
    }

    #[test]
    fn zero_schedule_never_sends() {
        let mut b = HBatch::new(Schedule::Constant(0.0));
        let mut r = rng(1);
        for _ in 0..100 {
            assert!(!b.next(&mut r));
        }
        assert_eq!(b.total_sends(), 0);
    }

    #[test]
    fn certain_schedule_always_sends() {
        let mut b = HBatch::new(Schedule::Constant(1.0));
        let mut r = rng(1);
        for _ in 0..100 {
            assert!(b.next(&mut r));
        }
        assert_eq!(b.total_sends(), 100);
    }

    #[test]
    fn determinism() {
        let run = |seed| {
            let mut b = HBatch::ctrl(2.0);
            let mut r = rng(seed);
            (0..500).map(|_| b.next(&mut r)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn schedule_accessor() {
        let b = HBatch::ctrl(3.0);
        assert!(b.schedule().label().contains("log"));
    }

    #[test]
    fn next_send_within_consumes_state_correctly() {
        let mut b = HBatch::data(); // p_1 = 1: certain immediate send
        let mut r = rng(0);
        assert_eq!(b.next_send_within(16, &mut r), Some(0));
        assert_eq!(b.position(), 2);
        assert_eq!(b.total_sends(), 1);
        // A zero-width bound consumes nothing.
        assert_eq!(b.next_send_within(0, &mut r), None);
        assert_eq!(b.position(), 2);
        // A no-send outcome consumes exactly the bound.
        let mut never = HBatch::new(Schedule::Constant(0.0));
        assert_eq!(never.next_send_within(37, &mut r), None);
        assert_eq!(never.position(), 38);
        assert_eq!(never.total_sends(), 0);
        let mut always = HBatch::new(Schedule::Constant(1.0));
        assert_eq!(always.next_send_within(5, &mut r), Some(0));
        assert_eq!(always.position(), 2);
    }

    /// The sampled "slots until next send" law must match per-slot
    /// Bernoulli stepping for every schedule family (deterministic
    /// seeds, 5σ tolerance on the mean and the no-send mass).
    #[test]
    fn next_send_within_matches_stepping_distribution() {
        let schedules = [
            Schedule::Reciprocal,
            Schedule::h_ctrl(2.0),
            Schedule::Constant(0.15),
            Schedule::PowerLaw { exponent: 1.5 },
            Schedule::ScaledReciprocal { c: 3.0 },
            Schedule::Custom(Arc::new(|i| 0.5 / (i as f64).sqrt())),
        ];
        const TRIALS: u64 = 4000;
        const BOUND: u64 = 64;
        for s in &schedules {
            let mut step_sum = 0.0f64;
            let mut step_sq = 0.0f64;
            let mut step_none = 0u64;
            let mut skip_sum = 0.0f64;
            let mut skip_none = 0u64;
            for t in 0..TRIALS {
                // Stepping reference.
                let mut b = HBatch::new(s.clone());
                let mut r = rng(t);
                let mut hit = None;
                for k in 0..BOUND {
                    if b.next(&mut r) {
                        hit = Some(k);
                        break;
                    }
                }
                match hit {
                    Some(k) => {
                        step_sum += k as f64;
                        step_sq += (k * k) as f64;
                    }
                    None => step_none += 1,
                }
                // Skip-ahead sample.
                let mut b = HBatch::new(s.clone());
                let mut r = rng(t + 1_000_000);
                match b.next_send_within(BOUND, &mut r) {
                    Some(gap) => {
                        assert!(gap < BOUND, "{}: gap {gap} out of bound", s.label());
                        skip_sum += gap as f64;
                    }
                    None => skip_none += 1,
                }
            }
            let n = TRIALS as f64;
            // 5σ band on the mean gap (conditional on sending, compared
            // via unconditional sums) and on the no-send mass.
            let var = (step_sq / n - (step_sum / n).powi(2)).max(1.0);
            let tol_mean = 5.0 * (var / n).sqrt() * 2.0 + 1e-9;
            assert!(
                ((step_sum - skip_sum) / n).abs() < tol_mean,
                "{}: mean gap diverged ({} vs {})",
                s.label(),
                step_sum / n,
                skip_sum / n
            );
            let p_none = step_none as f64 / n;
            let tol_none = 5.0 * (p_none.max(0.002) * (1.0 - p_none.max(0.002)) / n).sqrt() * 2.0;
            assert!(
                ((step_none as f64 - skip_none as f64) / n).abs() < tol_none + 0.01,
                "{}: no-send mass diverged ({step_none} vs {skip_none})",
                s.label()
            );
        }
    }
}
