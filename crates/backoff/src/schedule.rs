//! Non-adaptive sending-probability schedules.
//!
//! A schedule assigns each (1-based) slot index `i` a sending probability
//! `p_i`, fixed in advance — exactly the class of algorithms Theorem 4.2
//! proves sub-optimal under jamming. The paper's `h-batch` subroutine is a
//! schedule; so is "send with probability 1/i in slot i" (the smoothed
//! binary exponential backoff of Claim 3.5.1).

use std::fmt;
use std::sync::Arc;

use crate::functions::log2c;

/// A pre-defined probability schedule `i ↦ p_i`.
#[derive(Clone)]
pub enum Schedule {
    /// `p_i = min(1, 1/i)` — the `h_data` schedule (smoothed binary
    /// exponential backoff).
    Reciprocal,
    /// `p_i = min(1, c·log₂(i)/i)` — the `h_ctrl` schedule with constant
    /// `c = c₃`.
    LogOverI {
        /// The multiplicative constant `c₃`.
        c: f64,
    },
    /// `p_i = min(1, c/i)`.
    ScaledReciprocal {
        /// The multiplicative constant.
        c: f64,
    },
    /// Constant probability (slotted ALOHA).
    Constant(f64),
    /// `p_i = min(1, 1/i^e)` — polynomially decaying schedule.
    PowerLaw {
        /// The decay exponent `e > 0`.
        exponent: f64,
    },
    /// Arbitrary user-supplied schedule.
    Custom(Arc<dyn Fn(u64) -> f64 + Send + Sync>),
}

impl Schedule {
    /// The probability for slot `i` (1-based), clamped into `[0, 1]`.
    pub fn prob(&self, i: u64) -> f64 {
        let i = i.max(1);
        let x = i as f64;
        let raw = match self {
            Schedule::Reciprocal => 1.0 / x,
            Schedule::LogOverI { c } => c * log2c(x) / x,
            Schedule::ScaledReciprocal { c } => c / x,
            Schedule::Constant(p) => *p,
            Schedule::PowerLaw { exponent } => x.powf(-exponent),
            Schedule::Custom(f) => f(i),
        };
        if raw.is_finite() {
            raw.clamp(0.0, 1.0)
        } else {
            0.0
        }
    }

    /// The `h_data` schedule of the paper (`1/x`).
    pub fn h_data() -> Self {
        Schedule::Reciprocal
    }

    /// The `h_ctrl` schedule of the paper (`c₃·log x / x`).
    pub fn h_ctrl(c3: f64) -> Self {
        Schedule::LogOverI { c: c3 }
    }

    /// Label for reports.
    pub fn label(&self) -> String {
        match self {
            Schedule::Reciprocal => "1/i".to_string(),
            Schedule::LogOverI { c } => format!("{c}*log(i)/i"),
            Schedule::ScaledReciprocal { c } => format!("{c}/i"),
            Schedule::Constant(p) => format!("const({p})"),
            Schedule::PowerLaw { exponent } => format!("i^-{exponent}"),
            Schedule::Custom(_) => "custom".to_string(),
        }
    }
}

impl fmt::Debug for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reciprocal_values() {
        let s = Schedule::Reciprocal;
        assert_eq!(s.prob(1), 1.0);
        assert_eq!(s.prob(2), 0.5);
        assert_eq!(s.prob(4), 0.25);
        // i = 0 treated as 1 defensively.
        assert_eq!(s.prob(0), 1.0);
    }

    #[test]
    fn log_over_i_clamps_to_one() {
        let s = Schedule::h_ctrl(10.0);
        assert_eq!(s.prob(1), 1.0); // 10*1/1 clamped
        let p = s.prob(1024);
        assert!((p - 10.0 * 10.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_reciprocal() {
        let s = Schedule::ScaledReciprocal { c: 3.0 };
        assert_eq!(s.prob(1), 1.0);
        assert_eq!(s.prob(6), 0.5);
    }

    #[test]
    fn constant_and_powerlaw() {
        assert_eq!(Schedule::Constant(0.3).prob(999), 0.3);
        assert_eq!(Schedule::Constant(2.0).prob(1), 1.0); // clamped
        let s = Schedule::PowerLaw { exponent: 2.0 };
        assert_eq!(s.prob(10), 0.01);
    }

    #[test]
    fn custom_and_nan_guard() {
        let s = Schedule::Custom(Arc::new(|i| 1.0 / (i as f64).sqrt()));
        assert_eq!(s.prob(4), 0.5);
        let bad = Schedule::Custom(Arc::new(|_| f64::NAN));
        assert_eq!(bad.prob(3), 0.0);
    }

    #[test]
    fn probabilities_always_in_unit_interval() {
        let schedules = [
            Schedule::Reciprocal,
            Schedule::h_ctrl(5.0),
            Schedule::ScaledReciprocal { c: 100.0 },
            Schedule::Constant(0.7),
            Schedule::PowerLaw { exponent: 0.5 },
        ];
        for s in &schedules {
            for i in [1u64, 2, 3, 10, 1000, 1 << 40] {
                let p = s.prob(i);
                assert!((0.0..=1.0).contains(&p), "{} at {i} gave {p}", s.label());
            }
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Schedule::Reciprocal.label(), "1/i");
        assert!(Schedule::h_ctrl(2.0).label().contains("log"));
        assert_eq!(format!("{:?}", Schedule::Constant(0.5)), "const(0.5)");
    }
}
