//! Non-adaptive sending-probability schedules.
//!
//! A schedule assigns each (1-based) slot index `i` a sending probability
//! `p_i`, fixed in advance — exactly the class of algorithms Theorem 4.2
//! proves sub-optimal under jamming. The paper's `h-batch` subroutine is a
//! schedule; so is "send with probability 1/i in slot i" (the smoothed
//! binary exponential backoff of Claim 3.5.1).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use crate::functions::log2c;

/// Length of the interned probability tables (see
/// [`Schedule::prob_table`]). Batches restart their index at 1 on every
/// phase restart, so in practice almost all lookups land inside the table.
const PROB_TABLE_LEN: usize = 1 << 15;

/// Sentinel threshold for "certain send, no RNG draw" (`p ≥ 1`). Strictly
/// above every possible 53-bit draw and every real threshold
/// (`ceil(p·2⁵³) ≤ 2⁵³` for `p < 1`).
pub const THRESHOLD_CERTAIN: u64 = u64::MAX;

/// Exact integer threshold for the standard 53-bit Bernoulli draw.
///
/// The `rand` convention samples `u64 → f64` as `(u >> 11) · 2⁻⁵³` and
/// sends iff that value is `< p`. Because `u < 2⁵³`, the product is exact,
/// and multiplying by `2⁵³` is an exact exponent shift, so
/// `(u >> 11)·2⁻⁵³ < p  ⟺  (u >> 11) < ceil(p·2⁵³)` — the float compare
/// can be replaced by an integer compare with *identical* outcomes for
/// every `u`. `p ≥ 1` maps to [`THRESHOLD_CERTAIN`] (no draw) and `p ≤ 0`
/// to `0` (no draw), mirroring the short-circuit branches of the float
/// path so the RNG consumption stays byte-identical.
pub fn bernoulli_threshold(p: f64) -> u64 {
    if p >= 1.0 {
        THRESHOLD_CERTAIN
    } else if p > 0.0 {
        // Exact: p ∈ (0,1) is a normal float, scaling by 2⁵³ only shifts
        // the exponent; ceil of a value ≤ 2⁵³ fits u64.
        (p * (1u64 << 53) as f64).ceil() as u64
    } else {
        0
    }
}

/// Resolve one Bernoulli threshold against a whole word of lanes at once:
/// the mask of lanes in `active` whose 53-bit draw sends under `thr`.
///
/// `draws[l]` is lane `l`'s raw `next_u64` output; entries outside
/// `active` are ignored (they may be garbage). Per lane this is exactly
/// the scalar compare `(draws[l] >> 11) < thr` — the whole-word form of
/// [`bernoulli_threshold`] — so `popcount(mask)` equals the number of
/// scalar sends the same draws would produce. The sentinel thresholds
/// short-circuit without reading `draws` at all, mirroring the scalar
/// no-draw branches.
#[inline]
pub fn threshold_send_mask(thr: u64, active: u64, draws: &[u64; 64]) -> u64 {
    match thr {
        THRESHOLD_CERTAIN => active,
        0 => 0,
        thr => {
            // Branch-free over the full word (inactive lanes masked out
            // afterwards) so the compare loop vectorizes.
            let mut send = 0u64;
            for (l, &u) in draws.iter().enumerate() {
                send |= u64::from((u >> 11) < thr) << l;
            }
            send & active
        }
    }
}

/// An interned, immutable prefix of a schedule's probabilities:
/// `probs[i-1] == schedule.prob(i)` for `1 ≤ i ≤ len` (bit-identical —
/// the table is filled by calling [`Schedule::prob`] itself), plus the
/// matching integer Bernoulli thresholds (see `bernoulli_threshold`).
#[derive(Clone)]
pub struct ProbTable {
    probs: Arc<[f64]>,
    thresholds: Arc<[u64]>,
}

impl ProbTable {
    /// The empty table: every lookup misses. Used by drivers as the
    /// "schedule has no interned table" representation, keeping the
    /// per-slot path a single bounds check instead of an `Option` match.
    pub fn empty() -> Self {
        static EMPTY: OnceLock<ProbTable> = OnceLock::new();
        EMPTY
            .get_or_init(|| ProbTable {
                probs: Arc::from([]),
                thresholds: Arc::from([]),
            })
            .clone()
    }

    fn filled(probs: Arc<[f64]>) -> Self {
        let thresholds = probs.iter().map(|&p| bernoulli_threshold(p)).collect();
        ProbTable { probs, thresholds }
    }

    /// The cached probability for 1-based index `i`, or `None` beyond the
    /// table.
    #[inline]
    pub fn get(&self, i: u64) -> Option<f64> {
        self.probs.get((i as usize).wrapping_sub(1)).copied()
    }

    /// The cached integer Bernoulli threshold for 1-based index `i`, or
    /// `None` beyond the table. `Some(0)` means never send (no draw),
    /// `Some(`[`THRESHOLD_CERTAIN`]`)` means always send (no draw);
    /// anything else compares against a 53-bit draw.
    #[inline]
    pub fn threshold(&self, i: u64) -> Option<u64> {
        self.thresholds.get((i as usize).wrapping_sub(1)).copied()
    }

    /// Resolve index `i` against a whole word of lanes: the send mask of
    /// the lanes in `active` under this table's threshold for `i` (see
    /// [`threshold_send_mask`]), or `None` beyond the table.
    #[inline]
    pub fn send_mask(&self, i: u64, active: u64, draws: &[u64; 64]) -> Option<u64> {
        self.threshold(i)
            .map(|thr| threshold_send_mask(thr, active, draws))
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Whether the table is empty (never true for interned tables).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }
}

impl fmt::Debug for ProbTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProbTable(len={})", self.probs.len())
    }
}

/// Cap on interned survival-table growth: 2²⁴ entries ≈ 134 MB of prefix
/// sums per schedule (materialized only when a run actually reaches that
/// deep), covering 16M-slot local horizons. Samples reaching past the
/// cap fall back to the exact per-slot walk. The Reciprocal schedule
/// never builds a table at all — its inversion is closed-form.
const SURVIVAL_TABLE_MAX: u64 = 1 << 24;

/// Exact per-slot inversion walk: the smallest `k ∈ [from, last]` with
/// cumulative log-survival `Σ_{i=from..k} ln(1 − p_i) < target`, treating
/// `p_i ≥ 1` as a certain send and `p_i ≤ 0` as a skipped slot. The slow
/// but always-correct backstop behind [`SurvivalTable`]; also used
/// directly for non-internable (`Custom`) schedules.
pub(crate) fn walk_next_send(
    schedule: &Schedule,
    from: u64,
    last: u64,
    target: f64,
) -> Option<u64> {
    let mut cum = 0.0f64;
    for i in from..=last {
        let p = schedule.prob(i);
        if p >= 1.0 {
            return Some(i);
        }
        if p > 0.0 {
            cum += (-p).ln_1p();
            if cum < target {
                return Some(i);
            }
        }
    }
    None
}

/// Interned, lazily grown **log-survival prefix sums** of a schedule:
/// `prefix[k] = Σ_{i=1..k} ln(1 − p_i)` over the non-certain entries
/// (certain sends `p_i ≥ 1` contribute 0 and are tracked as *barriers*;
/// `p_i ≤ 0` entries contribute 0 and can never be selected).
///
/// This is the engine of skip-ahead sampling: the next-send index of a
/// node following the schedule from position `start` is
/// `min { k : exp(prefix[k] − prefix[start−1]) < u }` for one uniform
/// draw `u` — found by binary search in O(log table) instead of one
/// Bernoulli draw per slot. Tables are interned per schedule (shared
/// process-wide) and grow on demand up to 2²⁴ entries
/// (`SURVIVAL_TABLE_MAX`); deeper lookups fall back to the exact walk.
#[derive(Clone)]
pub struct SurvivalTable {
    inner: Arc<RwLock<SurvivalCore>>,
}

struct SurvivalCore {
    schedule: Schedule,
    /// `prefix[0] = 0`; `prefix[k]` covers indices `1..=k`.
    prefix: Vec<f64>,
    /// Sorted 1-based indices with `p_i ≥ 1`.
    barriers: Vec<u64>,
}

impl SurvivalCore {
    fn covered(&self) -> u64 {
        (self.prefix.len() - 1) as u64
    }
}

impl SurvivalTable {
    fn new(schedule: Schedule) -> Self {
        SurvivalTable {
            inner: Arc::new(RwLock::new(SurvivalCore {
                schedule,
                prefix: vec![0.0],
                barriers: Vec::new(),
            })),
        }
    }

    /// Number of schedule indices currently covered by the prefix sums.
    pub fn covered(&self) -> u64 {
        self.inner
            .read()
            .expect("survival table poisoned")
            .covered()
    }

    fn ensure(&self, upto: u64) {
        let upto = upto.min(SURVIVAL_TABLE_MAX);
        if self
            .inner
            .read()
            .expect("survival table poisoned")
            .covered()
            >= upto
        {
            return;
        }
        let mut core = self.inner.write().expect("survival table poisoned");
        while core.covered() < upto {
            let i = core.covered() + 1;
            let p = core.schedule.prob(i);
            let last = *core.prefix.last().expect("prefix[0] exists");
            if p >= 1.0 {
                core.barriers.push(i);
                core.prefix.push(last);
            } else if p > 0.0 {
                core.prefix.push(last + (-p).ln_1p());
            } else {
                core.prefix.push(last);
            }
        }
    }

    /// The next-send index in `[start, last]` for log-uniform draw
    /// `ln_u = ln(u)`, `u ∈ (0, 1]`, or `None` when the draw survives the
    /// whole range. Deterministic given `ln_u`; exact inversion of the
    /// Bernoulli schedule (see the `survival_sampling_matches_bernoulli`
    /// test).
    pub fn next_send(&self, start: u64, last: u64, ln_u: f64) -> Option<u64> {
        debug_assert!(start >= 1 && start <= last);
        self.ensure(last);
        let core = self.inner.read().expect("survival table poisoned");
        let covered = core.covered();
        let in_table_last = last.min(covered);
        if start > in_table_last {
            return walk_next_send(&core.schedule, start, last, ln_u);
        }
        let base = core.prefix[start as usize - 1];
        let limit = base + ln_u;
        // First barrier in range caps the search: survival past it is 0.
        let bpos = core.barriers.partition_point(|&b| b < start);
        let barrier = core
            .barriers
            .get(bpos)
            .copied()
            .filter(|&b| b <= in_table_last);
        let hi = barrier.map(|b| b - 1).unwrap_or(in_table_last);
        if start <= hi {
            let slice = &core.prefix[start as usize..=hi as usize];
            let off = slice.partition_point(|&v| v >= limit);
            if off < slice.len() {
                return Some(start + off as u64);
            }
        }
        if let Some(b) = barrier {
            return Some(b);
        }
        if last <= covered {
            return None;
        }
        // Continue past the table with the residual log-survival budget.
        let residual = limit - core.prefix[in_table_last as usize];
        walk_next_send(&core.schedule, in_table_last + 1, last, residual)
    }
}

impl fmt::Debug for SurvivalTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SurvivalTable(covered={})", self.covered())
    }
}

/// Interned survival tables, keyed by schedule identity (variant +
/// parameter bits).
fn survival_tables() -> &'static Mutex<BTreeMap<(u8, u64), SurvivalTable>> {
    static TABLES: OnceLock<Mutex<BTreeMap<(u8, u64), SurvivalTable>>> = OnceLock::new();
    TABLES.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn fill_table(schedule: &Schedule) -> Arc<[f64]> {
    (1..=PROB_TABLE_LEN as u64)
        .map(|i| schedule.prob(i))
        .collect()
}

/// Interned table for [`Schedule::Reciprocal`] (parameter-free).
fn reciprocal_table() -> ProbTable {
    static TABLE: OnceLock<ProbTable> = OnceLock::new();
    TABLE
        .get_or_init(|| ProbTable::filled(fill_table(&Schedule::Reciprocal)))
        .clone()
}

/// Interned tables for [`Schedule::LogOverI`], keyed by the constant's
/// bits. The set of distinct constants in a process is tiny (protocol
/// parameters), so the map never grows past a handful of entries.
fn log_over_i_table(c: f64) -> ProbTable {
    static TABLES: OnceLock<Mutex<BTreeMap<u64, ProbTable>>> = OnceLock::new();
    let tables = TABLES.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut tables = tables.lock().expect("prob table lock poisoned");
    tables
        .entry(c.to_bits())
        .or_insert_with(|| ProbTable::filled(fill_table(&Schedule::LogOverI { c })))
        .clone()
}

/// A pre-defined probability schedule `i ↦ p_i`.
///
/// # Examples
///
/// ```
/// use contention_backoff::Schedule;
///
/// let h_data = Schedule::h_data();
/// assert_eq!(h_data.prob(1), 1.0);
/// assert_eq!(h_data.prob(4), 0.25);
/// // h_ctrl(x) = c₃·log₂(x)/x, clamped into [0, 1].
/// let h_ctrl = Schedule::h_ctrl(2.0);
/// assert_eq!(h_ctrl.prob(16), 0.5);
/// assert_eq!(h_ctrl.prob(1), 1.0);
/// ```
#[derive(Clone)]
pub enum Schedule {
    /// `p_i = min(1, 1/i)` — the `h_data` schedule (smoothed binary
    /// exponential backoff).
    Reciprocal,
    /// `p_i = min(1, c·log₂(i)/i)` — the `h_ctrl` schedule with constant
    /// `c = c₃`.
    LogOverI {
        /// The multiplicative constant `c₃`.
        c: f64,
    },
    /// `p_i = min(1, c/i)`.
    ScaledReciprocal {
        /// The multiplicative constant.
        c: f64,
    },
    /// Constant probability (slotted ALOHA).
    Constant(f64),
    /// `p_i = min(1, 1/i^e)` — polynomially decaying schedule.
    PowerLaw {
        /// The decay exponent `e > 0`.
        exponent: f64,
    },
    /// Arbitrary user-supplied schedule.
    Custom(Arc<dyn Fn(u64) -> f64 + Send + Sync>),
}

impl Schedule {
    /// The probability for slot `i` (1-based), clamped into `[0, 1]`.
    pub fn prob(&self, i: u64) -> f64 {
        let i = i.max(1);
        let x = i as f64;
        let raw = match self {
            Schedule::Reciprocal => 1.0 / x,
            Schedule::LogOverI { c } => c * log2c(x) / x,
            Schedule::ScaledReciprocal { c } => c / x,
            Schedule::Constant(p) => *p,
            Schedule::PowerLaw { exponent } => x.powf(-exponent),
            Schedule::Custom(f) => f(i),
        };
        if raw.is_finite() {
            raw.clamp(0.0, 1.0)
        } else {
            0.0
        }
    }

    /// The `h_data` schedule of the paper (`1/x`).
    pub fn h_data() -> Self {
        Schedule::Reciprocal
    }

    /// The `h_ctrl` schedule of the paper (`c₃·log x / x`).
    pub fn h_ctrl(c3: f64) -> Self {
        Schedule::LogOverI { c: c3 }
    }

    /// An interned table of this schedule's first probabilities, shared
    /// process-wide, for schedules whose per-call evaluation is expensive
    /// (`log₂` on the hot path). `None` for schedules that are cheap to
    /// evaluate directly or not internable (`Custom`).
    ///
    /// Entries are produced by [`prob`](Self::prob) itself, so cached and
    /// direct evaluation are bit-identical: simulations replay exactly the
    /// same whether or not a caller consults the table.
    pub fn prob_table(&self) -> Option<ProbTable> {
        match self {
            Schedule::Reciprocal => Some(reciprocal_table()),
            Schedule::LogOverI { c } => Some(log_over_i_table(*c)),
            _ => None,
        }
    }

    /// An interned [`SurvivalTable`] of this schedule's log-survival
    /// prefix sums, shared process-wide, for skip-ahead next-send
    /// sampling. `None` for schedules sampled in closed form
    /// (`Constant` is geometric) or not internable (`Custom`, which
    /// falls back to the exact per-slot walk).
    pub fn survival_table(&self) -> Option<SurvivalTable> {
        let key = match self {
            Schedule::Reciprocal => (0u8, 0u64),
            Schedule::LogOverI { c } => (1, c.to_bits()),
            Schedule::ScaledReciprocal { c } => (2, c.to_bits()),
            Schedule::PowerLaw { exponent } => (3, exponent.to_bits()),
            Schedule::Constant(_) | Schedule::Custom(_) => return None,
        };
        let mut tables = survival_tables().lock().expect("survival intern poisoned");
        Some(
            tables
                .entry(key)
                .or_insert_with(|| SurvivalTable::new(self.clone()))
                .clone(),
        )
    }

    /// Label for reports.
    pub fn label(&self) -> String {
        match self {
            Schedule::Reciprocal => "1/i".to_string(),
            Schedule::LogOverI { c } => format!("{c}*log(i)/i"),
            Schedule::ScaledReciprocal { c } => format!("{c}/i"),
            Schedule::Constant(p) => format!("const({p})"),
            Schedule::PowerLaw { exponent } => format!("i^-{exponent}"),
            Schedule::Custom(_) => "custom".to_string(),
        }
    }
}

impl fmt::Debug for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reciprocal_values() {
        let s = Schedule::Reciprocal;
        assert_eq!(s.prob(1), 1.0);
        assert_eq!(s.prob(2), 0.5);
        assert_eq!(s.prob(4), 0.25);
        // i = 0 treated as 1 defensively.
        assert_eq!(s.prob(0), 1.0);
    }

    #[test]
    fn log_over_i_clamps_to_one() {
        let s = Schedule::h_ctrl(10.0);
        assert_eq!(s.prob(1), 1.0); // 10*1/1 clamped
        let p = s.prob(1024);
        assert!((p - 10.0 * 10.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_reciprocal() {
        let s = Schedule::ScaledReciprocal { c: 3.0 };
        assert_eq!(s.prob(1), 1.0);
        assert_eq!(s.prob(6), 0.5);
    }

    #[test]
    fn constant_and_powerlaw() {
        assert_eq!(Schedule::Constant(0.3).prob(999), 0.3);
        assert_eq!(Schedule::Constant(2.0).prob(1), 1.0); // clamped
        let s = Schedule::PowerLaw { exponent: 2.0 };
        assert_eq!(s.prob(10), 0.01);
    }

    #[test]
    fn custom_and_nan_guard() {
        let s = Schedule::Custom(Arc::new(|i| 1.0 / (i as f64).sqrt()));
        assert_eq!(s.prob(4), 0.5);
        let bad = Schedule::Custom(Arc::new(|_| f64::NAN));
        assert_eq!(bad.prob(3), 0.0);
    }

    #[test]
    fn probabilities_always_in_unit_interval() {
        let schedules = [
            Schedule::Reciprocal,
            Schedule::h_ctrl(5.0),
            Schedule::ScaledReciprocal { c: 100.0 },
            Schedule::Constant(0.7),
            Schedule::PowerLaw { exponent: 0.5 },
        ];
        for s in &schedules {
            for i in [1u64, 2, 3, 10, 1000, 1 << 40] {
                let p = s.prob(i);
                assert!((0.0..=1.0).contains(&p), "{} at {i} gave {p}", s.label());
            }
        }
    }

    #[test]
    fn prob_tables_match_direct_evaluation_bitwise() {
        for s in [Schedule::Reciprocal, Schedule::h_ctrl(4.0)] {
            let t = s.prob_table().unwrap();
            assert_eq!(t.len(), PROB_TABLE_LEN);
            assert!(!t.is_empty());
            for i in [1u64, 2, 3, 100, 4096, PROB_TABLE_LEN as u64] {
                let cached = t.get(i).unwrap();
                assert_eq!(
                    cached.to_bits(),
                    s.prob(i).to_bits(),
                    "{} at {i}",
                    s.label()
                );
            }
            assert_eq!(t.get(PROB_TABLE_LEN as u64 + 1), None);
            assert_eq!(t.get(0), None);
        }
        // Cheap / non-internable schedules opt out.
        assert!(Schedule::Constant(0.5).prob_table().is_none());
        assert!(Schedule::Custom(Arc::new(|_| 0.1)).prob_table().is_none());
        // Distinct constants get distinct tables.
        let a = Schedule::h_ctrl(2.0).prob_table().unwrap();
        let b = Schedule::h_ctrl(3.0).prob_table().unwrap();
        assert_ne!(a.get(100).unwrap().to_bits(), b.get(100).unwrap().to_bits());
        assert!(format!("{a:?}").contains("ProbTable"));
    }

    #[test]
    fn threshold_matches_float_compare() {
        // The integer Bernoulli threshold must agree with the float
        // compare for every possible 53-bit draw value; sample the space
        // densely plus the boundary values.
        let mut us = vec![0u64, 1, 2, (1 << 53) - 2, (1 << 53) - 1];
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..512 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            us.push(x >> 11);
        }
        const EPS: f64 = 1.0 / (1u64 << 53) as f64;
        for s in [
            Schedule::Reciprocal,
            Schedule::h_ctrl(2.0),
            Schedule::h_ctrl(10.0),
        ] {
            let t = s.prob_table().unwrap();
            for i in [1u64, 2, 3, 4, 7, 10, 100, 5000, PROB_TABLE_LEN as u64] {
                let p = s.prob(i);
                let thr = t.threshold(i).unwrap();
                for &u in &us {
                    let float_send = (u as f64) * EPS < p;
                    let int_send = match thr {
                        THRESHOLD_CERTAIN => true,
                        0 => false,
                        thr => u < thr,
                    };
                    if p >= 1.0 {
                        assert!(int_send, "{} i={i}: certain", s.label());
                    } else if p <= 0.0 {
                        assert!(!int_send, "{} i={i}: never", s.label());
                    } else {
                        assert_eq!(
                            int_send,
                            float_send,
                            "{} i={i} p={p} u={u} thr={thr}",
                            s.label()
                        );
                    }
                }
            }
        }
    }

    /// Reference inversion by direct survival-product walk.
    fn reference_next_send(s: &Schedule, start: u64, last: u64, u: f64) -> Option<u64> {
        let mut surv = 1.0f64;
        for i in start..=last {
            surv *= 1.0 - s.prob(i);
            if surv < u {
                return Some(i);
            }
        }
        None
    }

    #[test]
    fn survival_table_inversion_matches_direct_product() {
        let schedules = [
            Schedule::Reciprocal,
            Schedule::h_ctrl(2.0), // barriers at 2, 3, 4
            Schedule::ScaledReciprocal { c: 3.0 },
            Schedule::PowerLaw { exponent: 1.5 },
        ];
        let us: [f64; 6] = [0.9371, 0.5003, 0.2442, 0.0613, 0.0071, 0.000913];
        for s in &schedules {
            let t = s.survival_table().expect("internable");
            for &start in &[1u64, 2, 5, 17, 300] {
                for &span in &[1u64, 3, 50, 2000] {
                    let last = start + span - 1;
                    for &u in &us {
                        assert_eq!(
                            t.next_send(start, last, u.ln()),
                            reference_next_send(s, start, last, u),
                            "{} start={start} last={last} u={u}",
                            s.label()
                        );
                    }
                }
            }
            assert!(t.covered() >= 300, "{:?} grew on demand", t);
        }
    }

    #[test]
    fn survival_table_certain_and_zero_entries() {
        // h_ctrl(2): p_1..p_4 ≥ 1 (log2c clamps to ≥ 1). From any index
        // inside the barrier run the next send is certain and immediate,
        // regardless of the draw.
        let s = Schedule::h_ctrl(2.0);
        let t = s.survival_table().unwrap();
        assert_eq!(t.next_send(1, 10, (0.99f64).ln()), Some(1));
        assert_eq!(t.next_send(3, 10, (1e-9f64).ln()), Some(3));
        // An all-zero schedule never sends, whatever the draw.
        let zero = Schedule::ScaledReciprocal { c: 0.0 };
        let tz = zero.survival_table().unwrap();
        assert_eq!(tz.next_send(1, 500, (0.999f64).ln()), None);
        assert_eq!(tz.next_send(1, 500, (1e-12f64).ln()), None);
    }

    #[test]
    fn walk_matches_table_for_equivalent_schedules() {
        // A Custom clone of Reciprocal goes down the walk path; results
        // must agree with the interned table for the same draws.
        let custom = Schedule::Custom(Arc::new(|i| 1.0 / i as f64));
        assert!(custom.survival_table().is_none());
        let table = Schedule::Reciprocal.survival_table().unwrap();
        for &u in &[0.8123f64, 0.3301, 0.0442] {
            for &start in &[1u64, 4, 60] {
                assert_eq!(
                    walk_next_send(&custom, start, start + 500, u.ln()),
                    table.next_send(start, start + 500, u.ln()),
                    "start={start} u={u}"
                );
            }
        }
        // Constant schedules intern nothing (closed form at the caller).
        assert!(Schedule::Constant(0.5).survival_table().is_none());
    }

    #[test]
    fn labels() {
        assert_eq!(Schedule::Reciprocal.label(), "1/i");
        assert!(Schedule::h_ctrl(2.0).label().contains("log"));
        assert_eq!(format!("{:?}", Schedule::Constant(0.5)), "const(0.5)");
    }
}
