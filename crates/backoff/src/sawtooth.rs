//! Sawtooth backoff (Bender et al., SPAA 2005 family).
//!
//! Plain (monotone) backoff only ever *decreases* its sending probability,
//! which is wrong when an empty slot means "nobody is here" rather than
//! "too many are here". Sawtooth backoff repeatedly sweeps the probability
//! *upwards* again: epoch `e` consists of sub-phases with probabilities
//! `2^{-e}, 2^{-(e-1)}, …, 2^{-1}`, each sub-phase `2^{-j}` lasting `2^j`
//! slots, after which epoch `e+1` begins. Plotted over time the probability
//! traces a rising sawtooth within each epoch — hence the name.
//!
//! Sawtooth is a strong baseline in the *batch* setting but, like every
//! fixed sweep, it is defeated by adversarial arrival patterns — one of the
//! motivations the paper cites for its two-subroutine design.

use rand::Rng;
use rand::RngCore;

/// Driver for sawtooth backoff over an abstract slot sequence.
///
/// # Examples
///
/// ```
/// use contention_backoff::sawtooth::Sawtooth;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// let mut saw = Sawtooth::new();
/// assert_eq!((saw.epoch(), saw.probability()), (1, 0.5));
/// // Epoch 1 is one sub-phase of two p=1/2 slots; epoch 2 then sweeps
/// // the probability upwards again: 1/4 for 4 slots, 1/2 for 2 slots.
/// saw.next(&mut rng);
/// saw.next(&mut rng);
/// assert_eq!((saw.epoch(), saw.probability()), (2, 0.25));
/// ```
#[derive(Debug, Clone)]
pub struct Sawtooth {
    /// Current epoch `e ≥ 1`.
    epoch: u32,
    /// Current sub-phase exponent `j` (probability `2^{-j}`), counts down
    /// from `epoch` to 1.
    sub: u32,
    /// Slots remaining in the current sub-phase.
    remaining: u64,
    total_sends: u64,
}

impl Sawtooth {
    /// Fresh sawtooth at epoch 1.
    pub fn new() -> Self {
        Sawtooth {
            epoch: 1,
            sub: 1,
            remaining: 2,
            total_sends: 0,
        }
    }

    /// Current epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Current sending probability.
    pub fn probability(&self) -> f64 {
        0.5f64.powi(self.sub as i32)
    }

    /// Total broadcasts so far.
    pub fn total_sends(&self) -> u64 {
        self.total_sends
    }

    /// Advance one slot; returns whether the node transmits.
    pub fn next<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> bool {
        let p = self.probability();
        let send = rng.gen::<f64>() < p;
        if send {
            self.total_sends += 1;
        }
        self.remaining -= 1;
        if self.remaining == 0 {
            if self.sub > 1 {
                // Probability rises within the epoch: 2^{-j} → 2^{-(j-1)}.
                self.sub -= 1;
            } else {
                // Epoch done; restart the sweep one level deeper.
                self.epoch = self.epoch.saturating_add(1).min(62);
                self.sub = self.epoch;
            }
            self.remaining = 1u64 << self.sub;
        }
        send
    }
}

impl Default for Sawtooth {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn initial_state() {
        let s = Sawtooth::new();
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.probability(), 0.5);
    }

    #[test]
    fn epoch_structure() {
        // Epoch 1: one sub-phase (j=1) of 2 slots. Epoch 2: j=2 (4 slots)
        // then j=1 (2 slots). Epoch 3: j=3 (8) j=2 (4) j=1 (2)…
        let mut s = Sawtooth::new();
        let mut r = rng(0);
        let mut probs = Vec::new();
        for _ in 0..20 {
            probs.push(s.probability());
            s.next(&mut r);
        }
        let expected = [
            0.5, 0.5, // epoch 1, j=1
            0.25, 0.25, 0.25, 0.25, // epoch 2, j=2
            0.5, 0.5, // epoch 2, j=1
            0.125, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125, // epoch 3, j=3
            0.25, 0.25, 0.25, 0.25, // epoch 3, j=2 begins
        ];
        assert_eq!(probs.as_slice(), expected.as_slice());
    }

    #[test]
    fn probability_rises_within_epoch() {
        let mut s = Sawtooth::new();
        let mut r = rng(1);
        // Enter epoch 3.
        for _ in 0..8 {
            s.next(&mut r);
        }
        assert_eq!(s.epoch(), 3);
        let p_start = s.probability();
        for _ in 0..8 {
            s.next(&mut r);
        }
        assert!(s.probability() > p_start);
    }

    #[test]
    fn send_rate_tracks_probability() {
        let mut s = Sawtooth::new();
        let mut r = rng(42);
        let mut sends = 0u64;
        const N: u64 = 100_000;
        for _ in 0..N {
            sends += u64::from(s.next(&mut r));
        }
        // Within any epoch the expected sends per sub-phase is exactly 1
        // (2^j slots × 2^-j); sends grow ≈ (number of sub-phases) ~ log² of
        // elapsed time. Loose sanity bounds:
        assert!(sends > 20, "sends {sends}");
        assert!(sends < 1000, "sends {sends}");
        assert_eq!(s.total_sends(), sends);
    }

    #[test]
    fn default_matches_new() {
        assert_eq!(Sawtooth::default().epoch(), Sawtooth::new().epoch());
    }

    #[test]
    fn determinism() {
        let run = |seed| {
            let mut s = Sawtooth::new();
            let mut r = rng(seed);
            (0..300).map(|_| s.next(&mut r)).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
    }
}
