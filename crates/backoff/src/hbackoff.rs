//! The `h`-backoff subroutine (Section 2.1).
//!
//! > Let `h : ℕ⁺ → ℕ⁺`. A node runs `h`-backoff starting from slot `l` if,
//! > for any `k ∈ ℕ`, in the slot interval `I_k = [l−1+2^k, l−1+2^{k+1})`,
//! > the node sends in `h(|I_k|)` slots drawn uniformly at random (with
//! > replacement) from `I_k`.
//!
//! Stage `k` has length `2^k`; stage 0 has length 1 so a fresh `h`-backoff
//! always broadcasts in its very first slot. The subroutine is *adaptive* in
//! the sense of Theorem 4.2: conditioned on the draws, the node's sending
//! indicator in a slot is correlated with its other sends within the stage —
//! the property plain schedules lack and that makes backoff necessary for
//! jamming-resistance.
//!
//! [`HBackoff`] is driven one *channel slot* at a time via
//! [`HBackoff::next`]; mapping channel slots onto the odd/even physical
//! channels is the caller's job (the protocol layer).

use rand::Rng;
use rand::RngCore;

/// Stage-based send counter: stage length ↦ number of sends in the stage.
pub trait SendCount {
    /// How many sends in a stage of `stage_len` slots; implementations
    /// should return a value in `[0, stage_len]` (the driver clamps anyway).
    fn count(&self, stage_len: u64) -> u64;
}

impl<F> SendCount for F
where
    F: Fn(u64) -> u64,
{
    fn count(&self, stage_len: u64) -> u64 {
        self(stage_len)
    }
}

/// Always one send per stage — the sparsest useful backoff (classical
/// windowed binary exponential backoff expressed in stage form).
#[derive(Debug, Clone, Copy, Default)]
pub struct OnePerStage;

impl SendCount for OnePerStage {
    fn count(&self, _stage_len: u64) -> u64 {
        1
    }
}

/// Driver for the `h`-backoff subroutine over an abstract channel-slot
/// sequence.
///
/// # Examples
///
/// ```
/// use contention_backoff::hbackoff::{HBackoff, OnePerStage};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(7);
/// let mut b = HBackoff::new(OnePerStage);
/// // Stage 0 has length 1, so a fresh backoff always sends immediately.
/// assert!(b.next(&mut rng));
/// // One send per stage thereafter: stages 1..=3 cover slots 2..=15.
/// let sends: u64 = (0..14).map(|_| u64::from(b.next(&mut rng))).sum();
/// assert_eq!(sends, 3);
/// assert_eq!(b.total_sends(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct HBackoff<C> {
    counter: C,
    stage: u32,
    pos: u64,
    /// Sorted, deduplicated send offsets within the current stage.
    sends: Vec<u64>,
    cursor: usize,
    total_sends: u64,
}

/// Cap on the stage exponent to keep `2^stage` in range; stages beyond this
/// would outlast any feasible simulation by many orders of magnitude.
const MAX_STAGE: u32 = 62;

impl<C: SendCount> HBackoff<C> {
    /// Fresh backoff at stage 0 (the next [`next`](Self::next) call is its
    /// first channel slot).
    pub fn new(counter: C) -> Self {
        HBackoff {
            counter,
            stage: 0,
            pos: 0,
            sends: Vec::new(),
            cursor: 0,
            total_sends: 0,
        }
    }

    /// The current stage index `k` (length `2^k`).
    pub fn stage(&self) -> u32 {
        self.stage
    }

    /// Length of the current stage.
    pub fn stage_len(&self) -> u64 {
        1u64 << self.stage.min(MAX_STAGE)
    }

    /// Offset within the current stage (0-based).
    pub fn stage_pos(&self) -> u64 {
        self.pos
    }

    /// Total broadcast decisions so far.
    pub fn total_sends(&self) -> u64 {
        self.total_sends
    }

    fn draw_stage<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        let len = self.stage_len();
        let want = self.counter.count(len).clamp(0, len);
        self.sends.clear();
        for _ in 0..want {
            self.sends.push(rng.gen_range(0..len));
        }
        self.sends.sort_unstable();
        self.sends.dedup();
        self.cursor = 0;
    }

    /// Advance one channel slot; returns whether the node sends in it.
    ///
    /// Drawing happens lazily at each stage boundary, consuming
    /// `h(2^k)` uniform samples from `rng`. Generic over the RNG so
    /// monomorphizing callers skip virtual dispatch; the draw sequence is
    /// identical either way.
    pub fn next<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> bool {
        if self.pos == 0 {
            self.draw_stage(rng);
        }
        let send = self.cursor < self.sends.len() && self.sends[self.cursor] == self.pos;
        if send {
            self.cursor += 1;
            self.total_sends += 1;
        }
        self.pos += 1;
        if self.pos == self.stage_len() {
            self.pos = 0;
            self.stage = (self.stage + 1).min(MAX_STAGE);
        }
        send
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn first_slot_always_sends_with_positive_count() {
        // Stage 0 has length 1 and count >= 1 => must send in slot 0.
        for seed in 0..20 {
            let mut b = HBackoff::new(OnePerStage);
            let mut r = rng(seed);
            assert!(b.next(&mut r), "seed {seed}");
        }
    }

    #[test]
    fn one_per_stage_sends_exactly_once_per_stage() {
        let mut b = HBackoff::new(OnePerStage);
        let mut r = rng(3);
        // Stages 0..=9 cover 2^10 - 1 slots.
        let mut sends_by_stage = vec![0u64; 10];
        for _ in 0..((1u64 << 10) - 1) {
            let stage = b.stage() as usize;
            if b.next(&mut r) {
                sends_by_stage[stage] += 1;
            }
        }
        assert_eq!(sends_by_stage, vec![1; 10]);
    }

    #[test]
    fn counter_closure_respected_up_to_dedup() {
        // Ask for 4 sends per stage; duplicates may reduce the realized
        // count, but it stays in [1, 4] for stages of length >= 4.
        let mut b = HBackoff::new(|_len: u64| 4u64);
        let mut r = rng(5);
        let mut per_stage = std::collections::BTreeMap::new();
        for _ in 0..((1u64 << 12) - 1) {
            let stage = b.stage();
            if b.next(&mut r) {
                *per_stage.entry(stage).or_insert(0u64) += 1;
            }
        }
        for (stage, count) in per_stage {
            let len = 1u64 << stage;
            let expected_max = 4.min(len);
            assert!(
                count >= 1 && count <= expected_max,
                "stage {stage} count {count}"
            );
        }
    }

    #[test]
    fn zero_count_sends_nothing_in_stage() {
        // Count 0 in every stage: never sends.
        let mut b = HBackoff::new(|_len: u64| 0u64);
        let mut r = rng(9);
        for _ in 0..1000 {
            assert!(!b.next(&mut r));
        }
        assert_eq!(b.total_sends(), 0);
    }

    #[test]
    fn count_clamped_to_stage_len() {
        // Absurd count: clamped to `len` draws. Draws are with replacement,
        // so duplicates may leave gaps, but sends stay within [1, len] per
        // stage and the stage-0 slot (length 1) always sends.
        let mut b = HBackoff::new(|_len: u64| u64::MAX);
        let mut r = rng(11);
        let mut sends = 0u64;
        // Stage 0 (1 slot) + stage 1 (2 slots) + stage 2 (4 slots).
        let first = b.next(&mut r);
        assert!(first, "stage 0 must send");
        sends += 1;
        for _ in 0..6 {
            if b.next(&mut r) {
                sends += 1;
            }
        }
        assert!((3..=7).contains(&sends), "sends {sends}");
    }

    #[test]
    fn stage_progression() {
        let mut b = HBackoff::new(OnePerStage);
        let mut r = rng(1);
        assert_eq!(b.stage(), 0);
        assert_eq!(b.stage_len(), 1);
        b.next(&mut r);
        assert_eq!(b.stage(), 1);
        b.next(&mut r);
        assert_eq!(b.stage_pos(), 1);
        b.next(&mut r);
        assert_eq!(b.stage(), 2);
        assert_eq!(b.stage_len(), 4);
    }

    #[test]
    fn determinism() {
        let run = |seed| {
            let mut b = HBackoff::new(|l: u64| (l as f64).log2() as u64 + 1);
            let mut r = rng(seed);
            (0..500).map(|_| b.next(&mut r)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn uniform_spread_within_stage() {
        // With one send per stage, over many independent runs the chosen
        // slot in stage 10 (length 1024) should cover both halves.
        let mut lo = 0;
        let mut hi = 0;
        for seed in 0..200 {
            let mut b = HBackoff::new(OnePerStage);
            let mut r = rng(seed);
            // Skip stages 0..=9 (1023 slots).
            let mut sent_at = None;
            for i in 0..(1u64 << 11) - 1 {
                let in_stage_10 = i >= 1023;
                if b.next(&mut r) && in_stage_10 {
                    sent_at = Some(i - 1023);
                }
            }
            match sent_at {
                Some(p) if p < 512 => lo += 1,
                Some(_) => hi += 1,
                None => panic!("no send in stage 10"),
            }
        }
        assert!(lo > 50 && hi > 50, "lo={lo} hi={hi}");
    }
}
