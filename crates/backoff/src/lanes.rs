//! Word-level lane sampling of probability schedules.
//!
//! [`LaneBatch`] is the bit-parallel counterpart of
//! [`HBatch`](crate::hbatch::HBatch): one instance advances up to 64
//! independent copies of the same schedule — one per bit of a lane word —
//! resolving a whole slot in one threshold lookup plus one compare per
//! lane. Lane `l`'s draws and decisions are bit-for-bit what a dedicated
//! scalar `HBatch` fed lane `l`'s RNG stream would produce, which is the
//! property the lane simulation engine builds on.
//!
//! Randomness is abstracted behind [`LaneDraws`] so this crate stays
//! independent of the simulator: the engine supplies an adapter over its
//! per-lane RNG bank.

use crate::schedule::{bernoulli_threshold, threshold_send_mask, ProbTable, Schedule};

/// A source of raw `u64` draws for up to 64 lanes, each lane an
/// independent RNG stream.
///
/// Implementations must advance *only* the requested lanes (plus any lanes
/// they have internally declared dead), so that untouched lanes keep
/// replaying their scalar streams exactly.
pub trait LaneDraws {
    /// One raw draw from lane `lane`'s stream (the scalar `next_u64`).
    fn draw(&mut self, lane: usize) -> u64;

    /// One raw draw from every lane in `need`, written to `out[l]`.
    /// Entries outside `need` are unspecified. The default loops over
    /// [`draw`](Self::draw); implementations with structure-of-arrays
    /// state override it with a vectorizable whole-word step.
    fn draw_block(&mut self, need: u64, out: &mut [u64; 64]) {
        let mut m = need;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            out[l] = self.draw(l);
        }
    }

    /// Draw once from every lane in `need` and resolve the draws against
    /// one shared Bernoulli threshold in a single pass, returning the
    /// mask of lanes whose draw clears it (lane `l` sends iff
    /// `(draw >> 11) < thr`, the scalar convention — see
    /// [`threshold_send_mask`]). Equivalent to
    /// [`draw_block`](Self::draw_block) followed by the compare, but lets
    /// implementations fuse the two so the draws never round-trip
    /// through a buffer. `thr` must be an actual-draw threshold
    /// (neither 0 nor certain): callers resolve those without drawing.
    fn draw_mask(&mut self, need: u64, thr: u64) -> u64 {
        let mut out = [0u64; 64];
        self.draw_block(need, &mut out);
        threshold_send_mask(thr, need, &out)
    }
}

/// Up to 64 independent copies of one probability schedule, advanced a
/// slot at a time by lane masks.
///
/// Each lane keeps its own 1-based schedule position, so lanes may
/// diverge freely (late activations, per-lane restarts, frozen lanes).
/// When every lane in the active mask happens to sit at the same position
/// — the common case in lockstep simulation — the slot resolves on the
/// *uniform fast path*: one threshold, one block of draws, one compare
/// per lane ([`threshold_send_mask`]); otherwise each lane resolves
/// individually at its own position. Both paths consume, per lane,
/// exactly the draws a scalar [`HBatch`](crate::hbatch::HBatch) would
/// (one `u64` iff the slot's threshold is neither certain nor zero).
///
/// # Examples
///
/// ```
/// use contention_backoff::lanes::{LaneBatch, LaneDraws};
/// use contention_backoff::Schedule;
///
/// // A deterministic "RNG": every draw is far below any real threshold,
/// // so every drawn lane sends.
/// struct AlwaysLow;
/// impl LaneDraws for AlwaysLow {
///     fn draw(&mut self, _lane: usize) -> u64 { 0 }
/// }
///
/// let mut batch = LaneBatch::new(Schedule::Reciprocal);
/// // Slot 1 has p = 1: every active lane sends without drawing.
/// assert_eq!(batch.next_mask(0b1011, &mut AlwaysLow), 0b1011);
/// // A success in lane 0 restarts only that lane's schedule.
/// batch.restart(0b0001);
/// assert_eq!(batch.position(0), 1);
/// assert_eq!(batch.position(1), 2);
/// ```
#[derive(Debug, Clone)]
pub struct LaneBatch {
    schedule: Schedule,
    table: ProbTable,
    /// Per-lane 1-based next slot index — authoritative only for lanes
    /// *outside* `uniform_for` (members' entries are stale until they
    /// leave the set).
    positions: [u64; 64],
    /// Lanes known to sit together at `uniform_pos`. In lockstep
    /// simulation this is the steady state, and it makes the hot path
    /// O(1) bookkeeping per slot: a subset test in, a mask store out —
    /// no per-lane position loops.
    uniform_for: u64,
    /// The shared 1-based position of every lane in `uniform_for`.
    uniform_pos: u64,
}

impl LaneBatch {
    /// Fresh lanes, every position at slot 1.
    pub fn new(schedule: Schedule) -> Self {
        LaneBatch {
            table: schedule.prob_table().unwrap_or_else(ProbTable::empty),
            schedule,
            positions: [1; 64],
            uniform_for: u64::MAX,
            uniform_pos: 1,
        }
    }

    /// The underlying schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Lane `l`'s 1-based next slot index (the scalar batch's
    /// `position()`).
    pub fn position(&self, l: usize) -> u64 {
        if self.uniform_for >> l & 1 == 1 {
            self.uniform_pos
        } else {
            self.positions[l]
        }
    }

    /// Write the shared position through to `positions` for every
    /// uniform lane in `mask` and drop them from the set.
    #[cold]
    fn materialize(&mut self, mask: u64) {
        let mut m = self.uniform_for & mask;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            self.positions[l] = self.uniform_pos;
        }
        self.uniform_for &= !mask;
    }

    /// The Bernoulli threshold at schedule index `i`: interned inside the
    /// table, computed from [`Schedule::prob`] beyond it — outcome- and
    /// draw-identical either way (see [`bernoulli_threshold`]).
    #[inline]
    fn threshold_at(&self, i: u64) -> u64 {
        self.table
            .threshold(i)
            .unwrap_or_else(|| bernoulli_threshold(self.schedule.prob(i)))
    }

    /// Advance every lane in `active` one schedule slot and return the
    /// mask of lanes that send. Lanes outside `active` do not move and
    /// consume no randomness.
    pub fn next_mask<D: LaneDraws + ?Sized>(&mut self, active: u64, draws: &mut D) -> u64 {
        if active == 0 {
            return 0;
        }
        if active & !self.uniform_for == 0 {
            // Every active lane sits at the shared position: resolve the
            // whole word against one threshold with no per-lane loops.
            let i = self.uniform_pos;
            let thr = self.threshold_at(i);
            let send = if thr == 0 || thr == crate::schedule::THRESHOLD_CERTAIN {
                threshold_send_mask(thr, active, &[0; 64])
            } else {
                draws.draw_mask(active, thr)
            };
            let dropped = self.uniform_for & !active;
            if dropped != 0 {
                // Lanes leaving the set keep the position they froze at.
                let mut m = dropped;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    self.positions[l] = i;
                }
            }
            self.uniform_for = active;
            self.uniform_pos = i + 1;
            return send;
        }

        // Divergent positions: flush the uniform set and resolve each
        // lane at its own index (draw-for-draw what the fast path does,
        // since lane streams are independent). If the step happens to
        // re-align every active lane, re-form the set so subsequent
        // slots take the fast path again.
        self.materialize(u64::MAX);
        let mut send = 0u64;
        let mut aligned = u64::MAX;
        let first = self.positions[active.trailing_zeros() as usize];
        let mut m = active;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            let i = self.positions[l];
            if i != first {
                aligned = 0;
            }
            self.positions[l] = i + 1;
            let hit = match self.threshold_at(i) {
                crate::schedule::THRESHOLD_CERTAIN => true,
                0 => false,
                thr => (draws.draw(l) >> 11) < thr,
            };
            if hit {
                send |= 1 << l;
            }
        }
        if aligned != 0 {
            self.uniform_for = active;
            self.uniform_pos = first + 1;
        }
        send
    }

    /// Restart the schedule from slot 1 in every lane of `mask` (the
    /// lane form of rebuilding a scalar batch after a success), leaving
    /// the other lanes untouched.
    pub fn restart(&mut self, mask: u64) {
        if mask == 0 {
            return;
        }
        if self.uniform_for & !mask == 0 {
            // The whole uniform set restarts together (or is empty):
            // the set survives at position 1, non-members via `positions`.
            let mut m = mask & !self.uniform_for;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                self.positions[l] = 1;
            }
            self.uniform_for = mask;
            self.uniform_pos = 1;
            return;
        }
        self.materialize(mask);
        let mut m = mask;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            self.positions[l] = 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hbatch::HBatch;
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Test adapter: 64 scalar `SmallRng`s, one per lane.
    struct Bank(Vec<SmallRng>);

    impl Bank {
        fn new(offset: u64) -> Self {
            Bank(
                (0..64)
                    .map(|l| SmallRng::seed_from_u64(offset + l))
                    .collect(),
            )
        }
    }

    impl LaneDraws for Bank {
        fn draw(&mut self, lane: usize) -> u64 {
            self.0[lane].next_u64()
        }
    }

    fn schedules() -> Vec<Schedule> {
        vec![
            Schedule::Reciprocal,
            Schedule::h_ctrl(2.0),
            Schedule::Constant(0.3),
            Schedule::PowerLaw { exponent: 1.5 },
        ]
    }

    #[test]
    fn lockstep_lanes_match_scalar_batches() {
        for schedule in schedules() {
            let mut lanes = LaneBatch::new(schedule.clone());
            let mut bank = Bank::new(500);
            let mut scalars: Vec<(HBatch, SmallRng)> = (0..64)
                .map(|l| {
                    (
                        HBatch::new(schedule.clone()),
                        SmallRng::seed_from_u64(500 + l),
                    )
                })
                .collect();
            let mut mask_pops = 0u64;
            for slot in 0..200 {
                let mask = lanes.next_mask(u64::MAX, &mut bank);
                mask_pops += u64::from(mask.count_ones());
                for (l, (batch, rng)) in scalars.iter_mut().enumerate() {
                    let scalar = batch.next(rng);
                    assert_eq!(
                        mask >> l & 1 == 1,
                        scalar,
                        "{} slot {slot} lane {l}",
                        schedule.label()
                    );
                }
                // popcount of the masks == total scalar sends, at every slot.
                assert_eq!(
                    mask_pops,
                    scalars.iter().map(|(b, _)| b.total_sends()).sum::<u64>(),
                    "{} slot {slot}: popcount drifted from scalar sends",
                    schedule.label()
                );
            }
        }
    }

    #[test]
    fn divergent_lanes_match_scalar_batches() {
        // Lanes restart at different times and freeze on different slots,
        // forcing the per-lane path; each lane must still replay its
        // scalar twin exactly.
        for schedule in schedules() {
            let mut lanes = LaneBatch::new(schedule.clone());
            let mut bank = Bank::new(90_000);
            let mut scalars: Vec<(HBatch, SmallRng)> = (0..64)
                .map(|l| {
                    (
                        HBatch::new(schedule.clone()),
                        SmallRng::seed_from_u64(90_000 + l),
                    )
                })
                .collect();
            let mut sends = vec![0u64; 64];
            for round in 0u64..150 {
                // A different, irregular active set each round.
                let active = 0xA5A5_5A5A_F00F_0FF0u64.rotate_left(round as u32) | 1;
                let mask = lanes.next_mask(active, &mut bank);
                assert_eq!(mask & !active, 0);
                for l in 0..64usize {
                    if active >> l & 1 == 0 {
                        continue;
                    }
                    let (batch, rng) = &mut scalars[l];
                    let scalar = batch.next(rng);
                    assert_eq!(mask >> l & 1 == 1, scalar, "lane {l} round {round}");
                    sends[l] += u64::from(scalar);
                }
                // Restart a rotating subset, mirrored on the scalars.
                let restart = active & (0x1111_1111_1111_1111u64 << (round % 4));
                lanes.restart(restart);
                for (l, scalar) in scalars.iter_mut().enumerate() {
                    if restart >> l & 1 == 1 {
                        scalar.0 = HBatch::new(schedule.clone());
                    }
                }
            }
        }
    }

    #[test]
    fn inactive_lanes_never_move() {
        let mut lanes = LaneBatch::new(Schedule::Constant(0.5));
        let mut bank = Bank::new(7);
        for _ in 0..20 {
            lanes.next_mask(0x0000_0000_0000_00FF, &mut bank);
        }
        for l in 0..8 {
            assert_eq!(lanes.position(l), 21);
        }
        for l in 8..64 {
            assert_eq!(lanes.position(l), 1, "inactive lane {l} moved");
        }
        // The inactive lanes' RNG streams are also untouched.
        let mut fresh = SmallRng::seed_from_u64(7 + 63);
        assert_eq!(bank.draw(63), fresh.next_u64());
    }

    #[test]
    fn certain_and_zero_slots_draw_nothing() {
        // Reciprocal slot 1 is certain; Constant(0) is always zero. In
        // both cases the RNG must not be consumed.
        let mut lanes = LaneBatch::new(Schedule::Reciprocal);
        let mut bank = Bank::new(40);
        assert_eq!(lanes.next_mask(u64::MAX, &mut bank), u64::MAX);
        let mut fresh = SmallRng::seed_from_u64(40);
        assert_eq!(bank.draw(0), fresh.next_u64(), "certain slot drew");

        let mut lanes = LaneBatch::new(Schedule::Constant(0.0));
        let mut bank = Bank::new(41);
        assert_eq!(lanes.next_mask(u64::MAX, &mut bank), 0);
        let mut fresh = SmallRng::seed_from_u64(41);
        assert_eq!(bank.draw(0), fresh.next_u64(), "zero slot drew");
    }

    #[test]
    fn send_mask_helpers_match_threshold_compare() {
        let table = Schedule::Reciprocal.prob_table().expect("interned");
        let draws: [u64; 64] = std::array::from_fn(|l| (l as u64) << 56);
        // Slot 2: p = 1/2, threshold 2^52.
        let thr = table.threshold(2).expect("in table");
        let mask = table.send_mask(2, u64::MAX, &draws).expect("in table");
        for (l, &draw) in draws.iter().enumerate() {
            assert_eq!(mask >> l & 1 == 1, (draw >> 11) < thr, "lane {l}");
        }
        assert_eq!(threshold_send_mask(thr, 0, &draws), 0);
        assert_eq!(table.send_mask(1 << 40, u64::MAX, &draws), None);
    }
}
