//! Property tests for the backoff primitives.

use contention_backoff::schedule::THRESHOLD_CERTAIN;
use contention_backoff::{
    bernoulli_threshold, threshold_send_mask, FFunction, GFunction, HBackoff, HBatch, LaneBatch,
    LaneDraws, Sawtooth, Schedule, WindowBackoff, WindowGrowth,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Lane-draw adapter over 64 scalar `SmallRng`s that also counts how many
/// draws each lane has consumed, so tests can assert inactive lanes'
/// streams stay untouched.
struct CountingBank {
    rngs: Vec<SmallRng>,
    counts: [u64; 64],
}

impl CountingBank {
    fn new(offset: u64) -> Self {
        CountingBank {
            rngs: (0..64)
                .map(|l| SmallRng::seed_from_u64(offset + l))
                .collect(),
            counts: [0; 64],
        }
    }
}

impl LaneDraws for CountingBank {
    fn draw(&mut self, lane: usize) -> u64 {
        self.counts[lane] += 1;
        self.rngs[lane].next_u64()
    }
}

fn lane_schedule(which: u8) -> Schedule {
    match which {
        0 => Schedule::Reciprocal,
        1 => Schedule::h_ctrl(2.0),
        2 => Schedule::Constant(0.3),
        _ => Schedule::PowerLaw { exponent: 1.5 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// h-backoff: per-stage realized sends are within [min(1,count), count]
    /// for any requested count, and stage lengths double.
    #[test]
    fn hbackoff_stage_send_bounds(seed in 0u64..5000, count in 0u64..20) {
        let mut b = HBackoff::new(move |_len: u64| count);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut per_stage: Vec<u64> = Vec::new();
        let mut current = 0u64;
        let mut stage = 0u32;
        for _ in 0..((1u64 << 10) - 1) {
            if b.stage() != stage {
                per_stage.push(current);
                current = 0;
                stage = b.stage();
            }
            if b.next(&mut rng) {
                current += 1;
            }
        }
        for (k, &sends) in per_stage.iter().enumerate() {
            let len = 1u64 << k;
            let max = count.min(len);
            let min = if count == 0 { 0 } else { 1u64.min(max) };
            prop_assert!(sends >= min && sends <= max,
                "stage {k}: {sends} not in [{min}, {max}]");
        }
    }

    /// h-batch respects its schedule exactly for deterministic schedules.
    #[test]
    fn hbatch_extremes(seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut always = HBatch::new(Schedule::Constant(1.0));
        let mut never = HBatch::new(Schedule::Constant(0.0));
        for _ in 0..200 {
            prop_assert!(always.next(&mut rng));
            prop_assert!(!never.next(&mut rng));
        }
    }

    /// Schedules always produce probabilities in [0, 1].
    #[test]
    fn schedule_unit_interval(i in 1u64..u64::MAX, c in 0.0f64..100.0, e in 0.01f64..5.0) {
        for s in [
            Schedule::Reciprocal,
            Schedule::LogOverI { c },
            Schedule::ScaledReciprocal { c },
            Schedule::Constant(c / 100.0),
            Schedule::PowerLaw { exponent: e },
        ] {
            let p = s.prob(i);
            prop_assert!((0.0..=1.0).contains(&p), "{} at {i} -> {p}", s.label());
        }
    }

    /// Window backoff sends exactly once per window, for every growth rule.
    #[test]
    fn window_one_send_each(seed in 0u64..2000, which in 0u8..3) {
        let growth = match which {
            0 => WindowGrowth::Binary,
            1 => WindowGrowth::Polynomial(2.0),
            _ => WindowGrowth::Linear,
        };
        let mut b = WindowBackoff::new(growth);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut window = 0u32;
        let mut sends_this_window = 0u32;
        for _ in 0..4000u32 {
            if b.window() != window {
                prop_assert_eq!(sends_this_window, 1, "window {} of {:?}", window, growth);
                window = b.window();
                sends_this_window = 0;
            }
            if b.next(&mut rng) {
                sends_this_window += 1;
            }
        }
    }

    /// f is eventually non-decreasing in x for every admissible g.
    /// (Remark 1's conditions hold "for x ≥ x₀": the raw formula
    /// log x / log² g(x) dips at small x — e.g. g = log gives f(4) = 2 but
    /// f(16) = 1 — and the paper's constants absorb that region. k/log²k
    /// is increasing from k ≈ 9, so we test k ≥ 9.)
    #[test]
    fn f_monotone_in_x(k1 in 9u32..50, k2 in 9u32..50) {
        let (lo, hi) = if k1 <= k2 { (k1, k2) } else { (k2, k1) };
        for g in [
            GFunction::Constant(2.0),
            GFunction::Log,
            GFunction::PolyLog(2),
            GFunction::ExpSqrtLog(1.0),
        ] {
            let f = FFunction::from_g(g);
            let a = f.eval((1u64 << lo) as f64);
            let b = f.eval((1u64 << hi) as f64);
            prop_assert!(b >= a - 1e-9, "f not monotone: f(2^{lo})={a}, f(2^{hi})={b}");
        }
    }

    /// g evaluation is finite and ≥ 1 on the whole admissible family.
    #[test]
    fn g_total_and_clamped(x in 0.0f64..1e18) {
        for g in [
            GFunction::Constant(0.0),
            GFunction::Constant(7.0),
            GFunction::Log,
            GFunction::PolyLog(3),
            GFunction::ExpSqrtLog(2.0),
        ] {
            let v = g.eval(x);
            prop_assert!(v.is_finite() && v >= 1.0, "{} at {x} -> {v}", g.label());
        }
    }

    /// Sawtooth probability is always a (negative) power of two in (0, ½].
    #[test]
    fn sawtooth_probability_range(seed in 0u64..500, steps in 1usize..2000) {
        let mut s = Sawtooth::new();
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..steps {
            let p = s.probability();
            prop_assert!(p > 0.0 && p <= 0.5);
            prop_assert_eq!(p.log2().fract(), 0.0, "p={} not a power of two", p);
            s.next(&mut rng);
        }
    }

    /// backoff_send_count is always within [1, stage_len].
    #[test]
    fn send_count_bounds(k in 0u32..50, c2 in 0.1f64..10.0) {
        let f = FFunction::new(GFunction::Constant(2.0), 1.0, c2);
        let len = 1u64 << k;
        let c = f.backoff_send_count(len);
        prop_assert!(c >= 1 && c <= len);
    }

    /// popcount(send mask) == number of active lanes whose 53-bit draw
    /// clears the threshold, for arbitrary probabilities, masks, and
    /// draws; set bits are always a subset of the active mask; the
    /// certain/zero thresholds resolve without looking at the draws.
    #[test]
    fn send_mask_popcount_matches_scalar_compare(
        p in 0.0f64..1.2,
        active in 0u64..=u64::MAX,
        seed in 0u64..=u64::MAX,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let draws: [u64; 64] = std::array::from_fn(|_| rng.next_u64());
        let thr = bernoulli_threshold(p.min(1.0));
        let mask = threshold_send_mask(thr, active, &draws);
        prop_assert_eq!(mask & !active, 0, "sent from an inactive lane");
        let scalar_sends = (0..64u32)
            .filter(|&l| active >> l & 1 == 1 && (draws[l as usize] >> 11) < thr)
            .count() as u32;
        prop_assert_eq!(mask.count_ones(), scalar_sends);
        for l in 0..64u32 {
            let expect = active >> l & 1 == 1 && (draws[l as usize] >> 11) < thr;
            prop_assert_eq!(mask >> l & 1 == 1, expect, "lane {} disagrees", l);
        }
        prop_assert_eq!(threshold_send_mask(THRESHOLD_CERTAIN, active, &draws), active);
        prop_assert_eq!(threshold_send_mask(0, active, &draws), 0);
    }

    /// The interned table's whole-word resolution agrees with the free
    /// function at its own threshold, at every cached index.
    #[test]
    fn prob_table_send_mask_consistent(
        which in 0u8..2,
        i in 1u64..32_768,
        active in 0u64..=u64::MAX,
        seed in 0u64..=u64::MAX,
    ) {
        let schedule = if which == 0 { Schedule::Reciprocal } else { Schedule::h_ctrl(2.0) };
        let table = schedule.prob_table().expect("interned schedule has a table");
        let mut rng = SmallRng::seed_from_u64(seed);
        let draws: [u64; 64] = std::array::from_fn(|_| rng.next_u64());
        let thr = table.threshold(i).expect("index inside table");
        prop_assert_eq!(thr, bernoulli_threshold(schedule.prob(i)));
        prop_assert_eq!(
            table.send_mask(i, active, &draws).expect("index inside table"),
            threshold_send_mask(thr, active, &draws)
        );
    }

    /// LaneBatch vs 64 scalar HBatch twins under a random schedule and a
    /// random sequence of active/restart masks: every lane bit equals the
    /// scalar decision, popcount equals total scalar sends per slot, sends
    /// are a subset of the active mask, and inactive lanes move neither
    /// their schedule position nor their RNG stream.
    #[test]
    fn lane_batch_matches_scalar_hbatch(
        which in 0u8..4,
        seed in 0u64..1_000_000,
        steps in 1usize..120,
    ) {
        let schedule = lane_schedule(which);
        let mut lanes = LaneBatch::new(schedule.clone());
        let mut bank = CountingBank::new(seed);
        let mut scalars: Vec<(HBatch, SmallRng)> = (0..64)
            .map(|l| (HBatch::new(schedule.clone()), SmallRng::seed_from_u64(seed + l)))
            .collect();
        let mut driver = SmallRng::seed_from_u64(seed ^ 0xD1CE_D1CE_D1CE_D1CE);
        for step in 0..steps {
            let active = driver.next_u64();
            let positions_before: Vec<u64> = (0..64).map(|l| lanes.position(l)).collect();
            let counts_before = bank.counts;
            let mask = lanes.next_mask(active, &mut bank);
            prop_assert_eq!(mask & !active, 0, "step {}: sent outside active", step);
            let mut scalar_sends = 0u32;
            for l in 0..64usize {
                if active >> l & 1 == 1 {
                    let (batch, rng) = &mut scalars[l];
                    let scalar = batch.next(rng);
                    prop_assert_eq!(mask >> l & 1 == 1, scalar, "step {} lane {}", step, l);
                    scalar_sends += u32::from(scalar);
                } else {
                    prop_assert_eq!(
                        lanes.position(l), positions_before[l],
                        "step {}: inactive lane {} moved", step, l
                    );
                    prop_assert_eq!(
                        bank.counts[l], counts_before[l],
                        "step {}: inactive lane {} drew", step, l
                    );
                }
            }
            prop_assert_eq!(mask.count_ones(), scalar_sends, "step {}", step);
            // Restart a random (sparse) subset, mirrored on the scalar twins.
            let restart = active & driver.next_u64() & driver.next_u64();
            lanes.restart(restart);
            for (l, scalar) in scalars.iter_mut().enumerate() {
                if restart >> l & 1 == 1 {
                    scalar.0 = HBatch::new(schedule.clone());
                    prop_assert_eq!(lanes.position(l), 1);
                }
            }
        }
    }
}
