//! The `detlint` rule set: each rule encodes one invariant the repo's
//! determinism/durability guarantees rest on (see ARCHITECTURE.md,
//! "Invariants"). Rules are lexical — they match tokens on
//! comment/string-blanked source (see [`crate::lexer`]) — so each one
//! documents its approximation and offers the
//! `// detlint::allow(<rule>): <reason>` escape hatch for deliberate,
//! justified exceptions.

use crate::lexer::SourceMap;

/// How a diagnostic affects the exit code: `Error`s (and stale or
/// malformed pragmas) fail the run; `Warn`ings are advisory unless
/// `--deny-warnings` promotes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; reported but does not fail `check` by default.
    Warn,
    /// Fails `check`.
    Error,
}

impl Severity {
    /// Lowercase label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warn => "warning",
            Severity::Error => "error",
        }
    }
}

/// Static description of one rule, for `--list-rules` and pragma
/// validation.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule name as used in pragmas and diagnostics.
    pub name: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// One-line summary.
    pub summary: &'static str,
    /// Where the rule applies.
    pub scope: &'static str,
}

/// Every rule, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "no-hash-iteration",
        severity: Severity::Error,
        summary: "iterating a HashMap/HashSet yields platform/seed-dependent order; \
                  use BTreeMap/BTreeSet or sort first",
        scope: "deterministic crates (sim, core, backoff, analysis) and bench's \
                campaign/ + scenario/ paths",
    },
    RuleInfo {
        name: "no-wall-clock",
        severity: Severity::Error,
        summary: "Instant/SystemTime/thread::current leak wall-clock or scheduler state \
                  into results that must be byte-stable",
        scope: "all source except perf.rs, benchctl.rs, and service/daemon.rs",
    },
    RuleInfo {
        name: "atomic-writes-only",
        severity: Severity::Error,
        summary: "job artifacts must go through write_atomic or the Journal; bare \
                  File::create/fs::write can tear on crash",
        scope: "crates/bench/src/service/ (journal.rs is the durability layer itself)",
    },
    RuleInfo {
        name: "layering",
        severity: Severity::Error,
        summary: "internal crate dependencies must follow the workspace DAG \
                  (backoff/sim/analysis/lint depend on nothing internal; \
                  core/baselines on backoff+sim; bench on all five)",
        scope: "Cargo.toml manifests and contention_* paths in source",
    },
    RuleInfo {
        name: "forbid-unsafe-everywhere",
        severity: Severity::Error,
        summary: "every crate root carries #![forbid(unsafe_code)]; the only unsafe \
                  block allowed is the binary-only signal shim",
        scope: "all crate roots; all source except src/bin/helpers/sigint.rs",
    },
    RuleInfo {
        name: "no-println-in-libs",
        severity: Severity::Error,
        summary: "library code reports through observers/returned values, not stdout \
                  (println!/print!/dbg!); stderr logging is allowed",
        scope: "library source (everything outside src/bin/)",
    },
    RuleInfo {
        name: "no-unwrap",
        severity: Severity::Warn,
        summary: "bare .unwrap() in library code hides the invariant it relies on; \
                  prefer expect(\"<why this cannot fail>\") or error propagation",
        scope: "library source (everything outside src/bin/)",
    },
    RuleInfo {
        name: "faultpoint-catalog",
        severity: Severity::Error,
        summary: "every FaultPoint variant must be registered in FaultPoint::ALL and \
                  fired somewhere outside the catalog file; unknown or stale \
                  faultpoints break chaos-schedule coverage",
        scope: "crates/bench/src/service/faults.rs plus FaultPoint:: references \
                workspace-wide",
    },
];

/// Names of all rules (pragma validation).
pub fn rule_names() -> Vec<&'static str> {
    RULES.iter().map(|r| r.name).collect()
}

/// Look up a rule's default severity.
pub fn severity_of(rule: &str) -> Severity {
    RULES
        .iter()
        .find(|r| r.name == rule)
        .map(|r| r.severity)
        .unwrap_or(Severity::Error)
}

/// One finding, before pragma suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name.
    pub rule: &'static str,
    /// 0-based line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

/// A source file plus the workspace coordinates the rules key off.
#[derive(Debug)]
pub struct FileCtx {
    /// Workspace-relative path with `/` separators
    /// (e.g. `crates/sim/src/engine.rs`).
    pub rel_path: String,
    /// Crate short name: `sim`, `core`, `backoff`, `baselines`,
    /// `analysis`, `bench`, `lint`, or `contention` for the root
    /// umbrella's `src/`.
    pub crate_name: String,
    /// Whether the file is binary-target code (under `src/bin/`).
    pub is_bin: bool,
    /// Blanked source + masks + pragmas.
    pub map: SourceMap,
}

impl FileCtx {
    /// Derive crate coordinates from a workspace-relative path.
    /// Returns `None` for paths outside any `src/` tree.
    pub fn coords(rel_path: &str) -> Option<(String, bool)> {
        let is_bin = rel_path.contains("/src/bin/");
        if let Some(rest) = rel_path.strip_prefix("crates/") {
            let name = rest.split('/').next()?;
            if !rest[name.len()..].starts_with("/src/") {
                return None;
            }
            return Some((name.to_string(), is_bin));
        }
        if rel_path.starts_with("src/") {
            return Some(("contention".to_string(), rel_path.starts_with("src/bin/")));
        }
        None
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// All identifier-boundary occurrences of `pat` in `line`: the chars
/// immediately before/after the match must not extend an identifier
/// (so `println!` does not match inside `eprintln!`, and `unsafe`
/// does not match inside `unsafe_code`).
fn token_cols(line: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let first_ident = pat.chars().next().map(is_ident_char).unwrap_or(false);
    let last_ident = pat.chars().last().map(is_ident_char).unwrap_or(false);
    let mut from = 0usize;
    while let Some(off) = line[from..].find(pat) {
        let at = from + off;
        let before_ok = !first_ident
            || !line[..at]
                .chars()
                .next_back()
                .map(is_ident_char)
                .unwrap_or(false);
        let after_ok = !last_ident
            || !line[at + pat.len()..]
                .chars()
                .next()
                .map(is_ident_char)
                .unwrap_or(false);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + pat.len().max(1);
    }
    out
}

/// Lines (0-based) of non-test code containing `pat` as a token.
fn token_lines(ctx: &FileCtx, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    for (ln, line) in ctx.map.lines.iter().enumerate() {
        if ctx.map.is_test_line(ln) {
            continue;
        }
        if !token_cols(line, pat).is_empty() {
            out.push(ln);
        }
    }
    out
}

/// Run every per-file rule over one file.
pub fn check_file(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    no_hash_iteration(ctx, &mut out);
    no_wall_clock(ctx, &mut out);
    atomic_writes_only(ctx, &mut out);
    layering_in_source(ctx, &mut out);
    forbid_unsafe(ctx, &mut out);
    no_println_in_libs(ctx, &mut out);
    no_unwrap(ctx, &mut out);
    faultpoint_catalog(ctx, &mut out);
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    // One diagnostic per (rule, line): pragmas suppress at line
    // granularity, and a line that trips a rule twice (e.g. a for-loop
    // over `m.iter()` matching both forms) is still one violation.
    out.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    out
}

// ---------------------------------------------------------------- rules

/// Paths whose iteration order feeds reports, journals, or golden
/// fingerprints — one hash iteration here breaks byte-stability.
fn in_deterministic_scope(ctx: &FileCtx) -> bool {
    match ctx.crate_name.as_str() {
        "sim" | "core" | "backoff" | "analysis" => true,
        "bench" => {
            ctx.rel_path.contains("/campaign/")
                || ctx.rel_path.contains("/scenario/")
                || ctx.rel_path.contains("/service/")
        }
        _ => false,
    }
}

fn no_hash_iteration(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !in_deterministic_scope(ctx) {
        return;
    }
    // Pass 1: collect identifiers declared with a hash-ordered type.
    // Lexical approximation: `ident: [&[mut]] [path::]Hash{Map,Set}`
    // and `ident = Hash{Map,Set}…`. Wrapped types (`Mutex<HashMap>`)
    // and cross-file fields are not tracked — reviewers and the
    // BTreeMap-by-default convention cover those.
    let mut idents: Vec<String> = Vec::new();
    for line in &ctx.map.lines {
        for pat in ["HashMap", "HashSet"] {
            for col in token_cols(line, pat) {
                if let Some(id) = decl_ident(&line[..col]) {
                    if !idents.contains(&id) {
                        idents.push(id);
                    }
                }
            }
        }
    }
    const ITER_METHODS: &[&str] = &[
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_iter()",
        ".into_keys()",
        ".into_values()",
        ".drain(",
        ".retain(",
    ];
    for (ln, line) in ctx.map.lines.iter().enumerate() {
        if ctx.map.is_test_line(ln) {
            continue;
        }
        for id in &idents {
            for m in ITER_METHODS {
                let pat = format!("{id}{m}");
                if !token_cols(line, &pat).is_empty() {
                    out.push(Finding {
                        rule: "no-hash-iteration",
                        line: ln,
                        message: format!(
                            "`{id}{m}` iterates a HashMap/HashSet in a deterministic \
                             path; order varies across runs — use BTreeMap/BTreeSet \
                             or collect-and-sort"
                        ),
                    });
                }
            }
            if token_cols(line, "for ").is_empty() && token_cols(line, "for(").is_empty() {
                continue;
            }
            for form in [
                format!(" in {id}"),
                format!(" in &{id}"),
                format!(" in &mut {id}"),
            ] {
                if !token_cols(line, &form).is_empty() {
                    out.push(Finding {
                        rule: "no-hash-iteration",
                        line: ln,
                        message: format!(
                            "`for … in {id}` iterates a HashMap/HashSet in a \
                             deterministic path; order varies across runs — use \
                             BTreeMap/BTreeSet or collect-and-sort"
                        ),
                    });
                    break;
                }
            }
        }
    }
}

/// The identifier being declared/assigned just before a type token,
/// from patterns like `name: &mut path::HashMap` or `name = HashMap`.
fn decl_ident(before: &str) -> Option<String> {
    let mut t = before.trim_end();
    // Strip a trailing path prefix (`std::collections::`).
    while let Some(stripped) = t.strip_suffix("::") {
        t = stripped.trim_end_matches(is_ident_char);
    }
    let mut t = t.trim_end();
    // Strip reference/mutability noise between `:` and the type.
    loop {
        let before_len = t.len();
        t = t.trim_end();
        if let Some(s) = t.strip_suffix("mut") {
            // Only strip `mut` as a whole word.
            if s.chars().next_back().map(is_ident_char).unwrap_or(false) {
                break;
            }
            t = s;
            continue;
        }
        if let Some(s) = t.strip_suffix('&') {
            t = s;
            continue;
        }
        // Lifetime like `&'a `.
        if let Some(pos) = t.rfind('\'') {
            if t[pos + 1..].chars().all(is_ident_char) && !t[pos + 1..].is_empty() {
                t = &t[..pos];
                continue;
            }
        }
        if t.len() == before_len {
            break;
        }
    }
    let t = t.trim_end();
    let rest = if let Some(s) = t.strip_suffix(':') {
        // Type ascription — but not a path `::`.
        if s.ends_with(':') {
            return None;
        }
        s
    } else if let Some(s) = t.strip_suffix('=') {
        // Assignment — but not `==`, `=>`, `<=`, `>=`, `!=`, `+=`…
        if s.ends_with(['=', '<', '>', '!', '+', '-', '*', '/', '|', '&', '^']) {
            return None;
        }
        s
    } else {
        return None;
    };
    let rest = rest.trim_end();
    let id: String = rest
        .chars()
        .rev()
        .take_while(|&c| is_ident_char(c))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if id.is_empty() || id.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    const KEYWORDS: &[&str] = &[
        "let", "mut", "in", "ref", "pub", "const", "static", "return",
    ];
    if KEYWORDS.contains(&id.as_str()) {
        return None;
    }
    Some(id)
}

/// Files allowed to read wall-clock or thread identity: the perf
/// harness (it measures), the client UI (ETA display), and the daemon
/// (operational timing). None of these feed deterministic artifacts.
const WALL_CLOCK_ALLOW: &[&str] = &[
    "crates/bench/src/bin/perf.rs",
    "crates/bench/src/bin/benchctl.rs",
    "crates/bench/src/service/daemon.rs",
];

fn no_wall_clock(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if WALL_CLOCK_ALLOW.contains(&ctx.rel_path.as_str()) {
        return;
    }
    for (pat, what) in [
        ("Instant", "std::time::Instant"),
        ("SystemTime", "std::time::SystemTime"),
        ("UNIX_EPOCH", "std::time::UNIX_EPOCH"),
        ("thread::current", "std::thread::current (thread identity)"),
    ] {
        for ln in token_lines(ctx, pat) {
            out.push(Finding {
                rule: "no-wall-clock",
                line: ln,
                message: format!(
                    "{what} leaks nondeterministic state into a path that must be \
                     byte-stable; keep timing in perf.rs/benchctl.rs/daemon.rs or \
                     pass timestamps in explicitly"
                ),
            });
        }
    }
}

fn atomic_writes_only(ctx: &FileCtx, out: &mut Vec<Finding>) {
    // The service layer persists job artifacts; the forensics layer
    // persists checkpoint handles. Both promise crash-safe files.
    if !ctx.rel_path.starts_with("crates/bench/src/service/")
        && !ctx.rel_path.starts_with("crates/bench/src/forensics/")
    {
        return;
    }
    // journal.rs IS the durability layer: its File handling defines the
    // fsync discipline the rest of the service must route through.
    if ctx.rel_path.ends_with("/journal.rs") {
        return;
    }
    for pat in ["File::create", "fs::write", "OpenOptions", "File::options"] {
        for ln in token_lines(ctx, pat) {
            out.push(Finding {
                rule: "atomic-writes-only",
                line: ln,
                message: format!(
                    "`{pat}` in a durability-promising layer can leave torn artifacts \
                     on crash; write job artifacts and checkpoint handles via \
                     write_atomic() or the Journal"
                ),
            });
        }
    }
}

/// Internal crates each crate may depend on (the workspace DAG).
pub fn allowed_internal(crate_name: &str) -> &'static [&'static str] {
    match crate_name {
        "backoff" | "sim" | "analysis" | "lint" => &[],
        "core" | "baselines" => &["backoff", "sim"],
        "bench" => &["backoff", "sim", "core", "baselines", "analysis"],
        // The root umbrella re-exports everything.
        "contention" => &["backoff", "sim", "core", "baselines", "analysis", "bench"],
        _ => &[],
    }
}

/// Occurrences of `pat` that start an identifier (the char before must
/// not extend one, but the identifier may continue past the match —
/// needed to treat `contention_` as a crate-name prefix).
fn prefix_cols(line: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(off) = line[from..].find(pat) {
        let at = from + off;
        let before_ok = !line[..at]
            .chars()
            .next_back()
            .map(is_ident_char)
            .unwrap_or(false);
        if before_ok {
            out.push(at);
        }
        from = at + pat.len();
    }
    out
}

fn layering_in_source(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let allowed = allowed_internal(&ctx.crate_name);
    for (ln, line) in ctx.map.lines.iter().enumerate() {
        if ctx.map.is_test_line(ln) {
            continue;
        }
        for col in prefix_cols(line, "contention_") {
            let suffix: String = line[col + "contention_".len()..]
                .chars()
                .take_while(|&c| is_ident_char(c))
                .collect();
            if suffix.is_empty() || suffix == ctx.crate_name {
                continue;
            }
            if !allowed.contains(&suffix.as_str()) {
                out.push(Finding {
                    rule: "layering",
                    line: ln,
                    message: format!(
                        "crate `{}` must not reference `contention_{suffix}` \
                         (allowed internal deps: {})",
                        ctx.crate_name,
                        if allowed.is_empty() {
                            "none".to_string()
                        } else {
                            allowed.join(", ")
                        }
                    ),
                });
            }
        }
    }
}

/// The one documented `unsafe` exception: the binary-only SIGINT shim
/// (see its module docs — the library crates all forbid unsafe).
const UNSAFE_ALLOW: &str = "crates/bench/src/bin/helpers/sigint.rs";

fn forbid_unsafe(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.rel_path == UNSAFE_ALLOW {
        return;
    }
    for ln in token_lines(ctx, "unsafe") {
        out.push(Finding {
            rule: "forbid-unsafe-everywhere",
            line: ln,
            message: "`unsafe` outside the documented signal-shim exception \
                      (crates/bench/src/bin/helpers/sigint.rs)"
                .to_string(),
        });
    }
}

fn no_println_in_libs(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.is_bin {
        return;
    }
    for pat in ["println!", "print!", "dbg!"] {
        for ln in token_lines(ctx, pat) {
            out.push(Finding {
                rule: "no-println-in-libs",
                line: ln,
                message: format!(
                    "`{pat}` writes to stdout from library code; report through \
                     observers or returned values (stderr via eprintln! is fine \
                     for operational logging)"
                ),
            });
        }
    }
}

/// The faultpoint catalog: the one file that declares `FaultPoint`
/// variants and the `FaultPoint::ALL` registry every variant must
/// appear in (chaos schedules and the docs table are built from it).
pub const FAULTPOINT_CATALOG: &str = "crates/bench/src/service/faults.rs";

/// `FaultPoint` variant declarations in the catalog file:
/// `(name, 0-based line)`. Lexical approximation: uppercase-initial
/// identifiers between `pub enum FaultPoint` and its closing brace
/// (doc comments are blanked, attributes start with `#`).
pub fn faultpoint_variants(ctx: &FileCtx) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut in_enum = false;
    for (ln, line) in ctx.map.lines.iter().enumerate() {
        if !in_enum {
            if !token_cols(line, "pub enum FaultPoint").is_empty() {
                in_enum = true;
            }
            continue;
        }
        let t = line.trim_start();
        if t.starts_with('}') {
            break;
        }
        let name: String = t.chars().take_while(|&c| is_ident_char(c)).collect();
        if name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            out.push((name, ln));
        }
    }
    out
}

/// Variant names listed in the `FaultPoint::ALL` registry block
/// (`pub const ALL` through the closing `];`).
pub fn faultpoint_registered(ctx: &FileCtx) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_all = false;
    for line in &ctx.map.lines {
        if !in_all && token_cols(line, "pub const ALL").is_empty() {
            continue;
        }
        in_all = true;
        out.extend(faultpoint_refs_in(line));
        if line.contains("];") {
            break;
        }
    }
    out
}

/// `FaultPoint::Variant` references on one line. Variants are
/// CamelCase; associated consts like `FaultPoint::ALL` (no lowercase
/// chars) are not variant references.
fn faultpoint_refs_in(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    for col in token_cols(line, "FaultPoint") {
        let rest = &line[col + "FaultPoint".len()..];
        let Some(rest) = rest.strip_prefix("::") else {
            continue;
        };
        let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
        if name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
            && name.chars().any(|c| c.is_ascii_lowercase())
        {
            out.push(name);
        }
    }
    out
}

/// `FaultPoint::Variant` references on non-test lines:
/// `(name, 0-based line)` — the workspace-level catalog check's input.
pub fn faultpoint_refs(ctx: &FileCtx) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (ln, line) in ctx.map.lines.iter().enumerate() {
        if ctx.map.is_test_line(ln) {
            continue;
        }
        for name in faultpoint_refs_in(line) {
            out.push((name, ln));
        }
    }
    out
}

/// Per-file half of the catalog invariant: inside the catalog file,
/// every declared variant must be registered in `FaultPoint::ALL`.
/// (The cross-file half — unknown and never-fired faultpoints — runs
/// at workspace level, where the other files are visible.)
fn faultpoint_catalog(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.rel_path != FAULTPOINT_CATALOG {
        return;
    }
    let registered = faultpoint_registered(ctx);
    for (name, ln) in faultpoint_variants(ctx) {
        if !registered.contains(&name) {
            out.push(Finding {
                rule: "faultpoint-catalog",
                line: ln,
                message: format!(
                    "faultpoint `{name}` is declared but missing from \
                     `FaultPoint::ALL`; every faultpoint must be registered so \
                     chaos schedules and the docs table stay exhaustive"
                ),
            });
        }
    }
}

fn no_unwrap(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.is_bin {
        return;
    }
    for ln in token_lines(ctx, ".unwrap()") {
        out.push(Finding {
            rule: "no-unwrap",
            line: ln,
            message: "bare `.unwrap()` in library code; prefer \
                      `.expect(\"<invariant that makes this infallible>\")` or \
                      propagate the error"
                .to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn ctx(rel_path: &str, src: &str) -> FileCtx {
        let (crate_name, is_bin) = FileCtx::coords(rel_path).expect("coords");
        FileCtx {
            rel_path: rel_path.to_string(),
            crate_name,
            is_bin,
            map: scan(src, &rule_names()),
        }
    }

    fn rules_fired(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn coords_derivation() {
        assert_eq!(
            FileCtx::coords("crates/sim/src/engine.rs"),
            Some(("sim".into(), false))
        );
        assert_eq!(
            FileCtx::coords("crates/bench/src/bin/perf.rs"),
            Some(("bench".into(), true))
        );
        assert_eq!(
            FileCtx::coords("src/lib.rs"),
            Some(("contention".into(), false))
        );
        assert_eq!(FileCtx::coords("crates/sim/tests/x.rs"), None);
        assert_eq!(FileCtx::coords("tests/x.rs"), None);
    }

    #[test]
    fn hash_iteration_fires_on_tracked_ident() {
        let src = "use std::collections::HashMap;\n\
                   fn f() {\n\
                   let mut m: HashMap<u32, u32> = HashMap::new();\n\
                   for (k, v) in &m { use_it(k, v); }\n\
                   }\n";
        let f = check_file(&ctx("crates/sim/src/x.rs", src));
        assert_eq!(
            rules_fired(&f)
                .iter()
                .filter(|r| **r == "no-hash-iteration")
                .count(),
            1
        );
    }

    #[test]
    fn hash_iteration_method_calls_fire() {
        let src = "struct S { table: std::collections::HashMap<u64, u64> }\n\
                   impl S { fn dump(&self) -> Vec<u64> { self.table.keys().copied().collect() } }\n";
        let f = check_file(&ctx("crates/core/src/x.rs", src));
        assert!(rules_fired(&f).contains(&"no-hash-iteration"));
    }

    #[test]
    fn hash_entry_lookup_is_fine() {
        let src = "fn f(m: &mut std::collections::HashMap<u64, u64>) {\n\
                   m.entry(3).or_insert(4);\n\
                   let _ = m.get(&3);\n\
                   }\n";
        let f = check_file(&ctx("crates/backoff/src/x.rs", src));
        assert!(!rules_fired(&f).contains(&"no-hash-iteration"));
    }

    #[test]
    fn hash_iteration_out_of_scope_crate_is_fine() {
        let src = "fn f(m: &std::collections::HashMap<u64, u64>) -> Vec<u64> {\n\
                   m.keys().copied().collect()\n\
                   }\n";
        let f = check_file(&ctx("crates/baselines/src/x.rs", src));
        assert!(!rules_fired(&f).contains(&"no-hash-iteration"));
    }

    #[test]
    fn vec_iteration_is_fine() {
        let src = "fn f(v: Vec<u64>, m: std::collections::HashMap<u8, u8>) -> u64 {\n\
                   let _ = m.get(&1);\n\
                   v.iter().sum()\n\
                   }\n";
        let f = check_file(&ctx("crates/sim/src/x.rs", src));
        assert!(!rules_fired(&f).contains(&"no-hash-iteration"));
    }

    #[test]
    fn wall_clock_fires_and_allowlist_holds() {
        let src = "fn t() { let s = std::time::Instant::now(); }\n";
        let f = check_file(&ctx("crates/sim/src/x.rs", src));
        assert!(rules_fired(&f).contains(&"no-wall-clock"));
        let f = check_file(&ctx("crates/bench/src/bin/perf.rs", src));
        assert!(!rules_fired(&f).contains(&"no-wall-clock"));
        let f = check_file(&ctx("crates/bench/src/service/daemon.rs", src));
        assert!(!rules_fired(&f).contains(&"no-wall-clock"));
    }

    #[test]
    fn wall_clock_in_test_code_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { let s = std::time::Instant::now(); }\n}\n";
        let f = check_file(&ctx("crates/sim/src/x.rs", src));
        assert!(f.is_empty());
    }

    #[test]
    fn atomic_writes_scoped_to_service() {
        let src = "fn w(p: &std::path::Path) { std::fs::write(p, \"x\").unwrap(); }\n";
        let f = check_file(&ctx("crates/bench/src/service/local.rs", src));
        assert!(rules_fired(&f).contains(&"atomic-writes-only"));
        // journal.rs is the durability layer itself.
        let f = check_file(&ctx("crates/bench/src/service/journal.rs", src));
        assert!(!rules_fired(&f).contains(&"atomic-writes-only"));
        // Outside service/, plain writes are not the journal's business.
        let f = check_file(&ctx("crates/bench/src/campaign/writer.rs", src));
        assert!(!rules_fired(&f).contains(&"atomic-writes-only"));
        // The forensics layer persists checkpoint handles and makes the
        // same crash-safety promise.
        let src = "fn w(p: &std::path::Path) { let _ = std::fs::File::create(p); }\n";
        let f = check_file(&ctx("crates/bench/src/forensics/store.rs", src));
        assert!(rules_fired(&f).contains(&"atomic-writes-only"));
    }

    #[test]
    fn layering_violation_fires() {
        let src = "use contention_bench::campaign::SweepSpec;\n";
        let f = check_file(&ctx("crates/sim/src/x.rs", src));
        assert!(rules_fired(&f).contains(&"layering"));
        // bench may use sim.
        let src = "use contention_sim::Simulator;\n";
        let f = check_file(&ctx("crates/bench/src/scenario/mod.rs", src));
        assert!(!rules_fired(&f).contains(&"layering"));
        // Self-reference (bins of the same crate) is fine.
        let src = "use contention_bench::scenario::ScenarioSpec;\n";
        let f = check_file(&ctx("crates/bench/src/bin/campaign.rs", src));
        assert!(!rules_fired(&f).contains(&"layering"));
    }

    #[test]
    fn unsafe_fires_outside_shim() {
        let src = "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
        let f = check_file(&ctx("crates/core/src/x.rs", src));
        assert!(rules_fired(&f).contains(&"forbid-unsafe-everywhere"));
        let f = check_file(&ctx("crates/bench/src/bin/helpers/sigint.rs", src));
        assert!(!rules_fired(&f).contains(&"forbid-unsafe-everywhere"));
        // The attribute itself must not trip the token match.
        let f = check_file(&ctx("crates/core/src/lib.rs", "#![forbid(unsafe_code)]\n"));
        assert!(!rules_fired(&f).contains(&"forbid-unsafe-everywhere"));
    }

    #[test]
    fn println_fires_in_lib_not_bin() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"log\"); }\n";
        let f = check_file(&ctx("crates/analysis/src/x.rs", src));
        assert_eq!(
            rules_fired(&f)
                .iter()
                .filter(|r| **r == "no-println-in-libs")
                .count(),
            1,
            "eprintln! must not match"
        );
        let f = check_file(&ctx("crates/bench/src/bin/campaign.rs", src));
        assert!(!rules_fired(&f).contains(&"no-println-in-libs"));
    }

    #[test]
    fn unwrap_warns_in_lib_code() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let f = check_file(&ctx("crates/sim/src/x.rs", src));
        assert!(rules_fired(&f).contains(&"no-unwrap"));
        assert_eq!(severity_of("no-unwrap"), Severity::Warn);
        let f = check_file(&ctx("crates/bench/src/bin/campaign.rs", src));
        assert!(!rules_fired(&f).contains(&"no-unwrap"));
    }

    const CATALOG_OK: &str = "pub enum FaultPoint {\n\
                              /// Torn journal line.\n\
                              JournalAppendWrite,\n\
                              DaemonReadTorn,\n\
                              }\n\
                              impl FaultPoint {\n\
                              pub const ALL: [FaultPoint; 2] = [\n\
                              FaultPoint::JournalAppendWrite,\n\
                              FaultPoint::DaemonReadTorn,\n\
                              ];\n\
                              }\n";

    #[test]
    fn faultpoint_catalog_accepts_registered_variants() {
        let f = check_file(&ctx(FAULTPOINT_CATALOG, CATALOG_OK));
        assert!(!rules_fired(&f).contains(&"faultpoint-catalog"), "{f:#?}");
        // Same text anywhere else is out of the rule's scope.
        let f = check_file(&ctx("crates/bench/src/service/other.rs", CATALOG_OK));
        assert!(!rules_fired(&f).contains(&"faultpoint-catalog"));
    }

    #[test]
    fn faultpoint_catalog_fires_on_unregistered_variant() {
        let src = CATALOG_OK.replace("FaultPoint::DaemonReadTorn,\n", "");
        let f = check_file(&ctx(FAULTPOINT_CATALOG, &src));
        let hits: Vec<_> = f
            .iter()
            .filter(|v| v.rule == "faultpoint-catalog")
            .collect();
        assert_eq!(hits.len(), 1, "{f:#?}");
        assert!(hits[0].message.contains("DaemonReadTorn"));
    }

    #[test]
    fn faultpoint_helpers_parse_variants_and_refs() {
        let c = ctx(FAULTPOINT_CATALOG, CATALOG_OK);
        let variants: Vec<String> = faultpoint_variants(&c)
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(variants, ["JournalAppendWrite", "DaemonReadTorn"]);
        assert_eq!(
            faultpoint_registered(&c),
            ["JournalAppendWrite", "DaemonReadTorn"]
        );
        // `FaultPoint::ALL` is an associated const, not a variant ref,
        // and refs inside #[cfg(test)] code are invisible.
        let user = ctx(
            "crates/bench/src/service/daemon.rs",
            "fn f() { fire(FaultPoint::DaemonReadTorn); let n = FaultPoint::ALL.len(); }\n\
             #[cfg(test)]\nmod tests { fn t() { fire(FaultPoint::OnlyInTests); } }\n",
        );
        let refs: Vec<String> = faultpoint_refs(&user).into_iter().map(|(n, _)| n).collect();
        assert_eq!(refs, ["DaemonReadTorn"]);
    }

    #[test]
    fn decl_ident_shapes() {
        assert_eq!(decl_ident("    let mut tables: "), Some("tables".into()));
        assert_eq!(decl_ident("    pub sends: &'a mut "), Some("sends".into()));
        assert_eq!(decl_ident("    let m = "), Some("m".into()));
        assert_eq!(
            decl_ident("    foo(m: &std::collections::"),
            Some("m".into())
        );
        assert_eq!(decl_ident("    if x == "), None);
        assert_eq!(decl_ident("    Vec<"), None);
        assert_eq!(decl_ident("    match x => "), None);
    }
}
