//! `detlint` — the workspace invariant checker.
//!
//! ```text
//! detlint check [--root DIR] [--format text|json] [--deny-warnings] [--quiet]
//! detlint check-file FILE --as VIRTUAL_PATH [--format text|json] [--deny-warnings]
//! detlint --list-rules
//! ```
//!
//! Exit codes: `0` clean, `1` diagnostics found (errors, stale/bad
//! pragmas, or warnings under `--deny-warnings`), `2` usage error.

use std::path::PathBuf;
use std::process::ExitCode;

use contention_lint::rules::{Severity, RULES};
use contention_lint::{Report, Workspace};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd: Option<&str> = None;
    let mut root = PathBuf::from(".");
    let mut format = "text".to_string();
    let mut deny_warnings = false;
    let mut quiet = false;
    let mut file: Option<PathBuf> = None;
    let mut virtual_path: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" | "check-file" | "list-rules" if cmd.is_none() => {
                cmd = Some(match a.as_str() {
                    "check" => "check",
                    "check-file" => "check-file",
                    _ => "list-rules",
                })
            }
            "--list-rules" => cmd = Some("list-rules"),
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = "text".into(),
                Some("json") => format = "json".into(),
                _ => return usage("--format is text or json"),
            },
            "--as" => match it.next() {
                Some(v) => virtual_path = Some(v.clone()),
                None => return usage("--as needs a workspace-relative path"),
            },
            "--deny-warnings" => deny_warnings = true,
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                print!("{}", HELP);
                return ExitCode::SUCCESS;
            }
            other if cmd == Some("check-file") && file.is_none() && !other.starts_with('-') => {
                file = Some(PathBuf::from(other));
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    match cmd.unwrap_or("check") {
        "list-rules" => {
            list_rules();
            ExitCode::SUCCESS
        }
        "check" => {
            let ws = match Workspace::load(&root) {
                Ok(ws) => ws,
                Err(e) => {
                    eprintln!("detlint: cannot load workspace at {}: {e}", root.display());
                    return ExitCode::from(2);
                }
            };
            finish(ws.check(), &format, deny_warnings, quiet)
        }
        "check-file" => {
            let Some(file) = file else {
                return usage("check-file needs a file path");
            };
            let text = match std::fs::read_to_string(&file) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("detlint: cannot read {}: {e}", file.display());
                    return ExitCode::from(2);
                }
            };
            let vpath = match &virtual_path {
                Some(v) => v.clone(),
                // Default: lint the file at its real workspace-relative
                // location (must be under a src/ tree to resolve).
                None => file
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/"),
            };
            let Some(ws) = Workspace::single_file(&vpath, &text) else {
                eprintln!(
                    "detlint: `{vpath}` is not inside a crate src/ tree; \
                     pass --as crates/<name>/src/<file>.rs to place it"
                );
                return ExitCode::from(2);
            };
            finish(ws.check(), &format, deny_warnings, quiet)
        }
        _ => unreachable!(),
    }
}

fn finish(report: Report, format: &str, deny_warnings: bool, quiet: bool) -> ExitCode {
    if format == "json" {
        println!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        if !quiet {
            println!("{}", report.summary());
        }
    }
    if report.passes(deny_warnings) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn list_rules() {
    println!("detlint rules (suppress one line: // detlint::allow(<rule>): <reason>)\n");
    for r in RULES {
        println!(
            "  {:<26} {:<8} {}",
            r.name,
            match r.severity {
                Severity::Error => "error",
                Severity::Warn => "warn",
            },
            r.summary.split_whitespace().collect::<Vec<_>>().join(" ")
        );
        println!("  {:<26} {:<8} scope: {}", "", "", r.scope);
    }
    println!(
        "\n  {:<26} {:<8} an allow pragma that suppresses nothing is itself an error",
        "stale-pragma", "error"
    );
    println!(
        "  {:<26} {:<8} a malformed detlint:: comment is itself an error",
        "bad-pragma", "error"
    );
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("detlint: {msg}\n\n{HELP}");
    ExitCode::from(2)
}

const HELP: &str = "\
detlint — workspace static analysis for determinism, layering, and durability invariants

USAGE:
    detlint check [--root DIR] [--format text|json] [--deny-warnings] [--quiet]
    detlint check-file FILE [--as VIRTUAL_PATH] [--format text|json] [--deny-warnings]
    detlint --list-rules

Scans src/ and crates/*/src/ (tests, benches, examples, and vendor/ are
out of scope; #[cfg(test)] code inside src files is exempt). Exit code
0 when clean, 1 on diagnostics, 2 on usage errors.
";
