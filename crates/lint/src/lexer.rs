//! A small comment/string-aware scanner for Rust source.
//!
//! `detlint` does not parse Rust — it *blanks* everything that is not
//! code (comments, string/char literals) while preserving byte layout
//! and line structure, so the rule engine can match tokens on the
//! remaining text without false positives from doc prose or literals.
//! On top of the blanked text it computes two maps the rules need:
//!
//! * **test regions** — lines covered by a `#[cfg(test)]` or `#[test]`
//!   item (attribute through the matching close brace). Test code is
//!   exempt from every rule: tests legitimately iterate hash maps, take
//!   wall-clock timestamps, and `unwrap()`.
//! * **allow pragmas** — `// detlint::allow(<rule>): <reason>` line
//!   comments, each suppressing one rule on one line (its own line when
//!   trailing code, otherwise the next line).
//!
//! The scanner handles nested block comments, escapes in string and
//! char literals, raw strings (`r"…"`, `r#"…"#`, any hash depth), byte
//! and raw-byte strings, byte chars, raw identifiers (`r#type`), and
//! the char-literal/lifetime ambiguity (`'a'` vs `<'a>`).

/// One `// detlint::allow(rule): reason` pragma, resolved to the line
/// it suppresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// 0-based line the pragma suppresses (its own line when the
    /// comment trails code, otherwise the line below the comment).
    pub target_line: usize,
    /// 0-based line the pragma comment itself sits on.
    pub comment_line: usize,
    /// Rule name inside `allow(...)`.
    pub rule: String,
    /// Justification text after the colon (always non-empty; a missing
    /// reason is reported as a `bad-pragma` diagnostic instead).
    pub reason: String,
}

/// A malformed `detlint::` pragma comment and why it was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadPragma {
    /// 0-based line of the offending comment.
    pub line: usize,
    /// Human-readable description of the problem.
    pub why: String,
}

/// The scan result for one source file.
#[derive(Debug)]
pub struct SourceMap {
    /// Source text with comments and string/char literals replaced by
    /// spaces (newlines kept), split into lines.
    pub lines: Vec<String>,
    /// Per-line flag: line is inside a `#[cfg(test)]`/`#[test]` item.
    pub test_mask: Vec<bool>,
    /// Well-formed allow pragmas, in file order.
    pub pragmas: Vec<Pragma>,
    /// Malformed pragma comments (missing reason, unknown shape).
    pub bad_pragmas: Vec<BadPragma>,
}

impl SourceMap {
    /// Whether 0-based `line` lies in test-only code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_mask.get(line).copied().unwrap_or(false)
    }
}

/// Line comments extracted during blanking: `(0-based line, text after
/// the `//`, had code before it on the line)`.
struct LineComment {
    line: usize,
    text: String,
    trailing: bool,
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scan `src` into a [`SourceMap`]. `known_rules` is consulted for
/// pragma validation: an `allow()` naming an unknown rule is reported
/// as a bad pragma rather than silently never matching.
pub fn scan(src: &str, known_rules: &[&str]) -> SourceMap {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut blanked = String::with_capacity(src.len());
    let mut comments: Vec<LineComment> = Vec::new();
    let mut line = 0usize;
    let mut line_has_code = false;
    let mut i = 0usize;

    // Push a blanked (space) char, preserving newlines.
    macro_rules! blank {
        ($c:expr) => {{
            if $c == '\n' {
                blanked.push('\n');
                line += 1;
                line_has_code = false;
            } else {
                blanked.push(' ');
            }
        }};
    }
    macro_rules! code {
        ($c:expr) => {{
            if $c == '\n' {
                blanked.push('\n');
                line += 1;
                line_has_code = false;
            } else {
                blanked.push($c);
                if !$c.is_whitespace() {
                    line_has_code = true;
                }
            }
        }};
    }

    while i < n {
        let c = chars[i];
        let next = if i + 1 < n { chars[i + 1] } else { '\0' };
        let prev_ident = i > 0 && is_ident_char(chars[i - 1]);

        if c == '/' && next == '/' {
            // Line comment (incl. /// and //! doc comments).
            let start_line = line;
            let trailing = line_has_code;
            let mut text = String::new();
            i += 2;
            while i < n && chars[i] != '\n' {
                text.push(chars[i]);
                i += 1;
            }
            blanked.push(' ');
            blanked.push(' ');
            for _ in 0..text.chars().count() {
                blanked.push(' ');
            }
            comments.push(LineComment {
                line: start_line,
                text,
                trailing,
            });
            continue;
        }
        if c == '/' && next == '*' {
            // Block comment, possibly nested.
            let mut depth = 1usize;
            blank!(c);
            blank!(next);
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    blank!('/');
                    blank!('*');
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    blank!('*');
                    blank!('/');
                    i += 2;
                } else {
                    blank!(chars[i]);
                    i += 1;
                }
            }
            continue;
        }
        if c == '"' {
            i = blank_string(&chars, i, &mut |ch| blank!(ch));
            continue;
        }
        if (c == 'b' || c == 'r') && !prev_ident {
            // b"…", br#"…"#, r"…", r#"…"# — or a raw identifier r#foo.
            let mut j = i;
            if chars[j] == 'b' {
                j += 1;
            }
            let after_b = j;
            if j < n && chars[j] == 'r' {
                j += 1;
            }
            let hash_start = j;
            while j < n && chars[j] == '#' {
                j += 1;
            }
            let hashes = j - hash_start;
            let is_raw = after_b < n && chars[after_b] == 'r';
            if j < n && chars[j] == '"' && (is_raw || hashes == 0) && (is_raw || j == i + 1) {
                for &ch in &chars[i..j] {
                    blank!(ch);
                }
                i = if is_raw {
                    blank_raw_string(&chars, j, hashes, &mut |ch| blank!(ch))
                } else {
                    blank_string(&chars, j, &mut |ch| blank!(ch))
                };
                continue;
            }
            if c == 'b' && next == '\'' {
                blank!(c);
                i = blank_char_literal(&chars, i + 1, &mut |ch| blank!(ch));
                continue;
            }
            // Raw identifier (r#type) or plain code.
            code!(c);
            i += 1;
            continue;
        }
        if c == '\'' {
            // Char literal or lifetime/label.
            let third = if i + 2 < n { chars[i + 2] } else { '\0' };
            let is_char_lit = next == '\\' || (next != '\'' && third == '\'' && next != '\0');
            if is_char_lit {
                i = blank_char_literal(&chars, i, &mut |ch| blank!(ch));
            } else {
                code!(c);
                i += 1;
            }
            continue;
        }
        code!(c);
        i += 1;
    }

    let lines: Vec<String> = blanked.split('\n').map(str::to_string).collect();
    let test_mask = mark_test_regions(&lines);
    let (pragmas, bad_pragmas) = collect_pragmas(&comments, known_rules);
    SourceMap {
        lines,
        test_mask,
        pragmas,
        bad_pragmas,
    }
}

/// Blank a `"…"` string starting at the opening quote; returns the
/// index just past the closing quote (or end of input).
fn blank_string(chars: &[char], start: usize, blank: &mut impl FnMut(char)) -> usize {
    let n = chars.len();
    let mut i = start;
    blank(chars[i]); // opening quote
    i += 1;
    while i < n {
        if chars[i] == '\\' && i + 1 < n {
            blank(chars[i]);
            blank(chars[i + 1]);
            i += 2;
        } else if chars[i] == '"' {
            blank(chars[i]);
            return i + 1;
        } else {
            blank(chars[i]);
            i += 1;
        }
    }
    i
}

/// Blank a raw string starting at the opening quote (hashes already
/// consumed); returns the index just past the final hash.
fn blank_raw_string(
    chars: &[char],
    start: usize,
    hashes: usize,
    blank: &mut impl FnMut(char),
) -> usize {
    let n = chars.len();
    let mut i = start;
    blank(chars[i]); // opening quote
    i += 1;
    while i < n {
        if chars[i] == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if i + 1 + k >= n || chars[i + 1 + k] != '#' {
                    ok = false;
                    break;
                }
            }
            if ok {
                for k in 0..=hashes {
                    blank(chars[i + k]);
                }
                return i + 1 + hashes;
            }
        }
        blank(chars[i]);
        i += 1;
    }
    i
}

/// Blank a `'…'` char literal starting at the opening quote; returns
/// the index just past the closing quote.
fn blank_char_literal(chars: &[char], start: usize, blank: &mut impl FnMut(char)) -> usize {
    let n = chars.len();
    let mut i = start;
    blank(chars[i]); // opening quote
    i += 1;
    while i < n {
        if chars[i] == '\\' && i + 1 < n {
            blank(chars[i]);
            blank(chars[i + 1]);
            i += 2;
        } else if chars[i] == '\'' {
            blank(chars[i]);
            return i + 1;
        } else {
            blank(chars[i]);
            i += 1;
        }
    }
    i
}

/// Mark every line covered by a `#[cfg(test)]` or `#[test]` item:
/// from the attribute through the matching close brace (or semicolon
/// for brace-less items like `mod tests;`).
fn mark_test_regions(lines: &[String]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let text: String = lines.join("\n");
    let bytes: Vec<char> = text.chars().collect();
    // Offsets of line starts, for offset -> line conversion.
    let mut line_of = Vec::with_capacity(bytes.len() + 1);
    {
        let mut l = 0usize;
        for &c in &bytes {
            line_of.push(l);
            if c == '\n' {
                l += 1;
            }
        }
        line_of.push(l);
    }
    for pat in ["#[cfg(test)", "#[test]"] {
        let mut search_from = 0usize;
        while let Some(rel) = find_chars(&bytes[search_from..], pat) {
            let att = search_from + rel;
            search_from = att + 1;
            // Skip to the end of this attribute block.
            let mut i = att;
            let mut bracket = 0isize;
            while i < bytes.len() {
                match bytes[i] {
                    '[' => bracket += 1,
                    ']' => {
                        bracket -= 1;
                        if bracket == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            // Skip whitespace and any further attributes.
            loop {
                while i < bytes.len() && bytes[i].is_whitespace() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == '#' {
                    while i < bytes.len() && bytes[i] != ']' {
                        i += 1;
                    }
                    i += 1;
                } else {
                    break;
                }
            }
            // Scan the item: ends at the matching `}` of its first
            // brace, or at a top-level `;` before any brace.
            let mut depth = 0isize;
            let mut end = i;
            while end < bytes.len() {
                match bytes[end] {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    ';' if depth == 0 => break,
                    _ => {}
                }
                end += 1;
            }
            let from = line_of[att.min(line_of.len() - 1)];
            let to = line_of[end.min(line_of.len() - 1)];
            for flag in mask.iter_mut().take(to + 1).skip(from) {
                *flag = true;
            }
        }
    }
    mask
}

/// Substring search over a char slice (std has no regex; the corpus is
/// small enough that naive search is fine).
fn find_chars(haystack: &[char], needle: &str) -> Option<usize> {
    let pat: Vec<char> = needle.chars().collect();
    if pat.is_empty() || haystack.len() < pat.len() {
        return None;
    }
    (0..=haystack.len() - pat.len()).find(|&s| haystack[s..s + pat.len()] == pat[..])
}

const PRAGMA_PREFIX: &str = "detlint::allow(";

fn collect_pragmas(
    comments: &[LineComment],
    known_rules: &[&str],
) -> (Vec<Pragma>, Vec<BadPragma>) {
    let mut pragmas = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        // Plain `//` comments only; doc comments are prose.
        let body = c.text.trim_start();
        if body.starts_with('/') || body.starts_with('!') {
            continue;
        }
        let body = body.trim();
        if !body.contains("detlint::") {
            continue;
        }
        let Some(rest) = body.strip_prefix(PRAGMA_PREFIX) else {
            bad.push(BadPragma {
                line: c.line,
                why: format!(
                    "unrecognized detlint comment; expected `// {PRAGMA_PREFIX}<rule>): <reason>`"
                ),
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad.push(BadPragma {
                line: c.line,
                why: "unterminated rule name in detlint::allow(...)".to_string(),
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !known_rules.contains(&rule.as_str()) {
            bad.push(BadPragma {
                line: c.line,
                why: format!("unknown rule `{rule}` in detlint::allow (see --list-rules)"),
            });
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            bad.push(BadPragma {
                line: c.line,
                why: format!("detlint::allow({rule}) needs a justification: `: <reason>`"),
            });
            continue;
        }
        pragmas.push(Pragma {
            target_line: if c.trailing { c.line } else { c.line + 1 },
            comment_line: c.line,
            rule,
            reason: reason.to_string(),
        });
    }
    (pragmas, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["no-wall-clock", "no-unwrap"];

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let x = \"Instant::now\"; // Instant::now\nlet y = 1; /* Instant */";
        let map = scan(src, RULES);
        assert!(!map.lines[0].contains("Instant"));
        assert!(!map.lines[1].contains("Instant"));
        assert!(map.lines[0].contains("let x ="));
    }

    #[test]
    fn raw_and_byte_strings_are_blanked() {
        let src = "a(r#\"Instant \" quote\"#); b(br\"x\"); c(b\"y\"); d(r\"z\");";
        let map = scan(src, RULES);
        assert!(!map.lines[0].contains("Instant"));
        assert!(map.lines[0].contains("a("));
        assert!(map.lines[0].contains("d("));
    }

    #[test]
    fn raw_identifiers_stay_code() {
        let map = scan("let r#type = 1; let b = 2;", RULES);
        assert!(map.lines[0].contains("r#type"));
        assert!(map.lines[0].contains("let b"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let map = scan(
            "fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }",
            RULES,
        );
        assert!(map.lines[0].contains("<'a>"));
        assert!(map.lines[0].contains("&'a str"));
        assert!(!map.lines[0].contains('x') || !map.lines[0].contains("'x'"));
    }

    #[test]
    fn nested_block_comments() {
        let map = scan("a /* x /* y */ z */ b", RULES);
        assert_eq!(map.lines[0].trim(), "a                   b".trim());
        assert!(map.lines[0].contains('a') && map.lines[0].contains('b'));
        assert!(!map.lines[0].contains('y'));
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn live2() {}\n";
        let map = scan(src, RULES);
        assert!(!map.is_test_line(0));
        assert!(map.is_test_line(1));
        assert!(map.is_test_line(2));
        assert!(map.is_test_line(3));
        assert!(map.is_test_line(4));
        assert!(!map.is_test_line(5));
    }

    #[test]
    fn test_attr_fn_is_masked() {
        let src = "fn a() {}\n#[test]\nfn t() {\n    body();\n}\nfn b() {}\n";
        let map = scan(src, RULES);
        assert!(!map.is_test_line(0));
        assert!(map.is_test_line(2));
        assert!(map.is_test_line(3));
        assert!(!map.is_test_line(5));
    }

    #[test]
    fn pragma_targets_next_line_when_standalone() {
        let src = "// detlint::allow(no-wall-clock): timing UI only\nlet t = now();\n";
        let map = scan(src, RULES);
        assert_eq!(map.pragmas.len(), 1);
        assert_eq!(map.pragmas[0].target_line, 1);
        assert_eq!(map.pragmas[0].rule, "no-wall-clock");
        assert_eq!(map.pragmas[0].reason, "timing UI only");
    }

    #[test]
    fn pragma_targets_own_line_when_trailing() {
        let src = "let t = now(); // detlint::allow(no-wall-clock): measured path\n";
        let map = scan(src, RULES);
        assert_eq!(map.pragmas.len(), 1);
        assert_eq!(map.pragmas[0].target_line, 0);
    }

    #[test]
    fn pragma_without_reason_is_bad() {
        let map = scan("// detlint::allow(no-wall-clock)\nx();\n", RULES);
        assert!(map.pragmas.is_empty());
        assert_eq!(map.bad_pragmas.len(), 1);
        assert!(map.bad_pragmas[0].why.contains("justification"));
    }

    #[test]
    fn pragma_unknown_rule_is_bad() {
        let map = scan("// detlint::allow(no-such-rule): because\nx();\n", RULES);
        assert!(map.pragmas.is_empty());
        assert!(map.bad_pragmas[0].why.contains("unknown rule"));
    }

    #[test]
    fn pragma_in_doc_comment_is_ignored() {
        let map = scan("/// detlint::allow(no-unwrap): prose\nfn f() {}\n", RULES);
        assert!(map.pragmas.is_empty());
        assert!(map.bad_pragmas.is_empty());
    }
}
