//! # contention-lint
//!
//! `detlint`: a workspace static-analysis pass that machine-checks the
//! invariants the reproduction's guarantees rest on — byte-identical
//! traces, golden FNV fingerprints, crash-resumable journals, and the
//! crate layering that keeps the hot path inlineable. The rules are
//! listed in [`rules::RULES`] and documented in ARCHITECTURE.md
//! ("Invariants"); run `detlint --list-rules` for the live catalogue.
//!
//! The pass is **lexical**, not syntactic: [`lexer`] blanks comments
//! and string/char literals (and masks `#[cfg(test)]` regions) so
//! [`rules`] can match tokens without a Rust parser — the crate is
//! std-only, matching the workspace's vendored-deps constraint. False
//! positives are handled per line with
//! `// detlint::allow(<rule>): <reason>` pragmas; a pragma that stops
//! suppressing anything becomes a `stale-pragma` error so escapes
//! cannot outlive their justification.
//!
//! CI runs `cargo run --release -p contention-lint -- check` alongside
//! fmt/clippy/doc; the `tests/` corpus pins each rule firing on a
//! known-bad fixture and the live workspace staying clean.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod lexer;
pub mod rules;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rules::{severity_of, FileCtx, Severity};

/// One reported problem, after pragma suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule name (`stale-pragma` / `bad-pragma` for pragma hygiene).
    pub rule: String,
    /// Severity (stale/bad pragmas are errors).
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}[{}] {}",
            self.path,
            self.line,
            self.severity.label(),
            self.rule,
            self.message
        )
    }
}

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// All diagnostics, sorted by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Number of error-severity diagnostics.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// Whether the run passes: no errors (warnings allowed unless
    /// `deny_warnings`).
    pub fn passes(&self, deny_warnings: bool) -> bool {
        self.errors() == 0 && (!deny_warnings || self.warnings() == 0)
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "detlint: {} error{}, {} warning{} across {} file{}",
            self.errors(),
            if self.errors() == 1 { "" } else { "s" },
            self.warnings(),
            if self.warnings() == 1 { "" } else { "s" },
            self.files_scanned,
            if self.files_scanned == 1 { "" } else { "s" },
        )
    }

    /// Render as JSON (hand-rolled, same style as the bench crate's
    /// `Json` layer — no serde in the offline workspace).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!(
            "\"ok\":{},\"errors\":{},\"warnings\":{},\"files_scanned\":{},\"diagnostics\":[",
            self.errors() == 0,
            self.errors(),
            self.warnings(),
            self.files_scanned
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"rule\":{},\"severity\":{},\"path\":{},\"line\":{},\"message\":{}}}",
                json_str(&d.rule),
                json_str(d.severity.label()),
                json_str(&d.path),
                d.line,
                json_str(&d.message)
            ));
        }
        s.push_str("]}");
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed `Cargo.toml`: just the internal (`contention-*`) deps with
/// their line numbers, which is all the layering rule needs.
#[derive(Debug)]
pub struct Manifest {
    /// Workspace-relative path.
    pub rel_path: String,
    /// Crate short name (`sim`, …, `contention` for the root).
    pub crate_name: String,
    /// `(dep short name, 0-based line, section)` entries.
    pub internal_deps: Vec<(String, usize, String)>,
    /// Whether the manifest declares any dependency at all (the lint
    /// crate itself must stay std-only).
    pub has_any_dep: bool,
}

fn parse_manifest(rel_path: &str, crate_name: &str, text: &str) -> Manifest {
    let mut section = String::new();
    let mut internal_deps = Vec::new();
    let mut has_any_dep = false;
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') && line.ends_with(']') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        let dep_section = matches!(
            section.as_str(),
            "dependencies" | "dev-dependencies" | "build-dependencies"
        );
        if !dep_section || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let name: String = line
            .chars()
            .take_while(|&c| c.is_alphanumeric() || c == '-' || c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        has_any_dep = true;
        if let Some(short) = name.strip_prefix("contention-") {
            internal_deps.push((short.to_string(), ln, section.clone()));
        }
    }
    Manifest {
        rel_path: rel_path.to_string(),
        crate_name: crate_name.to_string(),
        internal_deps,
        has_any_dep,
    }
}

/// The loaded workspace: every `src/` tree plus the crate manifests.
#[derive(Debug)]
pub struct Workspace {
    files: Vec<FileCtx>,
    manifests: Vec<Manifest>,
}

impl Workspace {
    /// Load every source file under `root`'s `src/` and `crates/*/src/`
    /// trees, plus the crate manifests. Tests, benches, examples, and
    /// `vendor/` are out of scope by construction: rules police the
    /// shipped library/binary code, and test code is exempt anyway.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let known = rules::rule_names();
        let mut files = Vec::new();
        let mut src_roots: Vec<PathBuf> = vec![root.join("src")];
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_dir())
                .collect();
            entries.sort();
            for c in entries {
                src_roots.push(c.join("src"));
            }
        }
        for src_root in src_roots {
            if !src_root.is_dir() {
                continue;
            }
            let mut paths = Vec::new();
            walk_rs(&src_root, &mut paths)?;
            paths.sort();
            for path in paths {
                let rel = rel_to(root, &path);
                let Some((crate_name, is_bin)) = FileCtx::coords(&rel) else {
                    continue;
                };
                let text = fs::read_to_string(&path)?;
                files.push(FileCtx {
                    rel_path: rel,
                    crate_name,
                    is_bin,
                    map: lexer::scan(&text, &known),
                });
            }
        }
        let mut manifests = Vec::new();
        let root_manifest = root.join("Cargo.toml");
        if root_manifest.is_file() {
            let text = fs::read_to_string(&root_manifest)?;
            manifests.push(parse_manifest("Cargo.toml", "contention", &text));
        }
        if crates_dir.is_dir() {
            let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.join("Cargo.toml").is_file())
                .collect();
            entries.sort();
            for c in entries {
                let name = c
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                let text = fs::read_to_string(c.join("Cargo.toml"))?;
                manifests.push(parse_manifest(
                    &rel_to(root, &c.join("Cargo.toml")),
                    &name,
                    &text,
                ));
            }
        }
        Ok(Workspace { files, manifests })
    }

    /// Lint a single file as if it lived at workspace-relative
    /// `virtual_path` — the fixture-corpus entry point. Workspace-wide
    /// checks (manifest layering, crate-root attributes) don't run.
    pub fn single_file(virtual_path: &str, text: &str) -> Option<Workspace> {
        let (crate_name, is_bin) = FileCtx::coords(virtual_path)?;
        Some(Workspace {
            files: vec![FileCtx {
                rel_path: virtual_path.to_string(),
                crate_name,
                is_bin,
                map: lexer::scan(text, &rules::rule_names()),
            }],
            manifests: Vec::new(),
        })
    }

    /// Run every rule and apply pragmas; the returned report is fully
    /// deterministic (sorted, no timestamps).
    pub fn check(&self) -> Report {
        let mut diagnostics = Vec::new();
        for ctx in &self.files {
            let findings = rules::check_file(ctx);
            // A pragma suppresses one rule on one line; count uses so
            // stale pragmas can be reported.
            let mut used = vec![false; ctx.map.pragmas.len()];
            for f in findings {
                let suppressed = ctx
                    .map
                    .pragmas
                    .iter()
                    .enumerate()
                    .find(|(_, p)| p.rule == f.rule && p.target_line == f.line);
                match suppressed {
                    Some((i, _)) => used[i] = true,
                    None => diagnostics.push(Diagnostic {
                        rule: f.rule.to_string(),
                        severity: severity_of(f.rule),
                        path: ctx.rel_path.clone(),
                        line: f.line + 1,
                        message: f.message,
                    }),
                }
            }
            for (p, was_used) in ctx.map.pragmas.iter().zip(&used) {
                if !was_used {
                    diagnostics.push(Diagnostic {
                        rule: "stale-pragma".to_string(),
                        severity: Severity::Error,
                        path: ctx.rel_path.clone(),
                        line: p.comment_line + 1,
                        message: format!(
                            "detlint::allow({}) no longer suppresses anything; \
                             remove it (reason was: {})",
                            p.rule, p.reason
                        ),
                    });
                }
            }
            for b in &ctx.map.bad_pragmas {
                diagnostics.push(Diagnostic {
                    rule: "bad-pragma".to_string(),
                    severity: Severity::Error,
                    path: ctx.rel_path.clone(),
                    line: b.line + 1,
                    message: b.why.clone(),
                });
            }
        }
        self.check_manifests(&mut diagnostics);
        self.check_crate_roots(&mut diagnostics);
        self.check_faultpoints(&mut diagnostics);
        diagnostics.sort_by(|a, b| {
            (&a.path, a.line, &a.rule, &a.message).cmp(&(&b.path, b.line, &b.rule, &b.message))
        });
        diagnostics.dedup();
        Report {
            diagnostics,
            files_scanned: self.files.len(),
        }
    }

    /// Manifest side of the layering rule: internal deps must follow
    /// the DAG, and the lint crate itself must stay dependency-free.
    fn check_manifests(&self, out: &mut Vec<Diagnostic>) {
        for m in &self.manifests {
            let allowed = rules::allowed_internal(&m.crate_name);
            for (dep, ln, section) in &m.internal_deps {
                if !allowed.contains(&dep.as_str()) {
                    out.push(Diagnostic {
                        rule: "layering".to_string(),
                        severity: Severity::Error,
                        path: m.rel_path.clone(),
                        line: ln + 1,
                        message: format!(
                            "[{section}] of crate `{}` lists `contention-{dep}`, \
                             outside its allowed internal deps ({})",
                            m.crate_name,
                            if allowed.is_empty() {
                                "none".to_string()
                            } else {
                                allowed.join(", ")
                            }
                        ),
                    });
                }
            }
            if m.crate_name == "lint" && m.has_any_dep {
                out.push(Diagnostic {
                    rule: "layering".to_string(),
                    severity: Severity::Error,
                    path: m.rel_path.clone(),
                    line: 1,
                    message: "the lint crate is std-only by contract: it checks the \
                              layering rules, so it must not acquire dependencies"
                        .to_string(),
                });
            }
        }
    }

    /// Cross-file half of `faultpoint-catalog`: code outside the
    /// catalog file may only fire faultpoints the catalog declares, and
    /// every declared faultpoint must be fired somewhere outside it —
    /// a variant nothing fires is dead chaos surface that schedules
    /// would silently never exercise. Skipped in single-file mode
    /// (`check-file`), where the rest of the workspace is not visible.
    fn check_faultpoints(&self, out: &mut Vec<Diagnostic>) {
        if self.files.len() <= 1 {
            return;
        }
        let Some(catalog) = self
            .files
            .iter()
            .find(|f| f.rel_path == rules::FAULTPOINT_CATALOG)
        else {
            return;
        };
        let variants = rules::faultpoint_variants(catalog);
        let mut referenced: Vec<&str> = Vec::new();
        for ctx in &self.files {
            if ctx.rel_path == rules::FAULTPOINT_CATALOG {
                continue;
            }
            for (name, ln) in rules::faultpoint_refs(ctx) {
                match variants.iter().find(|(v, _)| *v == name) {
                    None => out.push(Diagnostic {
                        rule: "faultpoint-catalog".to_string(),
                        severity: Severity::Error,
                        path: ctx.rel_path.clone(),
                        line: ln + 1,
                        message: format!(
                            "`FaultPoint::{name}` is not declared in the catalog \
                             ({}); add the variant there and register it in \
                             `FaultPoint::ALL` first",
                            rules::FAULTPOINT_CATALOG
                        ),
                    }),
                    Some((v, _)) => {
                        if !referenced.contains(&v.as_str()) {
                            referenced.push(v.as_str());
                        }
                    }
                }
            }
        }
        for (name, ln) in &variants {
            if !referenced.contains(&name.as_str()) {
                out.push(Diagnostic {
                    rule: "faultpoint-catalog".to_string(),
                    severity: Severity::Error,
                    path: catalog.rel_path.clone(),
                    line: ln + 1,
                    message: format!(
                        "faultpoint `{name}` is declared but never fired outside \
                         the catalog; stale faultpoints are dead chaos surface — \
                         wire it into a hot path or remove it"
                    ),
                });
            }
        }
    }

    /// `#![forbid(unsafe_code)]` must be present in every crate root.
    fn check_crate_roots(&self, out: &mut Vec<Diagnostic>) {
        for ctx in &self.files {
            let is_crate_root = ctx.rel_path == "src/lib.rs"
                || (ctx.rel_path.starts_with("crates/") && ctx.rel_path.ends_with("/src/lib.rs"));
            if !is_crate_root {
                continue;
            }
            let has = ctx
                .map
                .lines
                .iter()
                .any(|l| l.contains("#![forbid(unsafe_code)]"));
            if !has {
                out.push(Diagnostic {
                    rule: "forbid-unsafe-everywhere".to_string(),
                    severity: Severity::Error,
                    path: ctx.rel_path.clone(),
                    line: 1,
                    message: "crate root is missing #![forbid(unsafe_code)]".to_string(),
                });
            }
        }
    }
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_to(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pragma_suppresses_and_stale_pragma_errors() {
        let bad = "fn f() { let t = std::time::Instant::now(); }\n";
        let ws = Workspace::single_file("crates/sim/src/x.rs", bad).expect("ctx");
        let report = ws.check();
        assert_eq!(report.errors(), 1);

        let ok = "// detlint::allow(no-wall-clock): fixture justification\n\
                  fn f() { let t = std::time::Instant::now(); }\n";
        let ws = Workspace::single_file("crates/sim/src/x.rs", ok).expect("ctx");
        let report = ws.check();
        assert_eq!(report.errors(), 0, "{:?}", report.diagnostics);

        let stale = "// detlint::allow(no-wall-clock): nothing to suppress\n\
                     fn f() {}\n";
        let ws = Workspace::single_file("crates/sim/src/x.rs", stale).expect("ctx");
        let report = ws.check();
        assert_eq!(report.errors(), 1);
        assert_eq!(report.diagnostics[0].rule, "stale-pragma");
    }

    #[test]
    fn trailing_pragma_suppresses_same_line() {
        let src = "fn f() { let t = std::time::Instant::now(); } \
                   // detlint::allow(no-wall-clock): same-line escape\n";
        let ws = Workspace::single_file("crates/sim/src/x.rs", src).expect("ctx");
        assert_eq!(ws.check().errors(), 0);
    }

    #[test]
    fn warnings_do_not_fail_unless_denied() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let ws = Workspace::single_file("crates/sim/src/x.rs", src).expect("ctx");
        let report = ws.check();
        assert_eq!(report.errors(), 0);
        assert_eq!(report.warnings(), 1);
        assert!(report.passes(false));
        assert!(!report.passes(true));
    }

    #[test]
    fn json_output_is_valid_and_escaped() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let ws = Workspace::single_file("crates/sim/src/x.rs", src).expect("ctx");
        let json = ws.check().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ok\":false"));
        assert!(json.contains("\"rule\":\"no-wall-clock\""));
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn manifest_layering_parses_and_checks() {
        let m = parse_manifest(
            "crates/sim/Cargo.toml",
            "sim",
            "[package]\nname = \"contention-sim\"\n\n[dependencies]\n\
             rand.workspace = true\ncontention-bench.workspace = true\n",
        );
        assert_eq!(m.internal_deps.len(), 1);
        assert_eq!(m.internal_deps[0].0, "bench");
        let ws = Workspace {
            files: Vec::new(),
            manifests: vec![m],
        };
        let report = ws.check();
        assert_eq!(report.errors(), 1);
        assert_eq!(report.diagnostics[0].rule, "layering");
    }

    #[test]
    fn workspace_dependencies_section_is_not_an_edge() {
        let m = parse_manifest(
            "Cargo.toml",
            "contention",
            "[workspace.dependencies]\ncontention-lint = { path = \"x\" }\n\
             [dependencies]\ncontention-sim.workspace = true\n",
        );
        // Only the [dependencies] entry counts, and sim is allowed.
        assert_eq!(m.internal_deps.len(), 1);
        let ws = Workspace {
            files: Vec::new(),
            manifests: vec![m],
        };
        assert_eq!(ws.check().errors(), 0);
    }

    #[test]
    fn lint_crate_must_be_dependency_free() {
        let m = parse_manifest(
            "crates/lint/Cargo.toml",
            "lint",
            "[dependencies]\nrand.workspace = true\n",
        );
        let ws = Workspace {
            files: Vec::new(),
            manifests: vec![m],
        };
        let report = ws.check();
        assert_eq!(report.errors(), 1);
        assert!(report.diagnostics[0].message.contains("std-only"));
    }

    fn file(rel_path: &str, text: &str) -> FileCtx {
        let (crate_name, is_bin) = FileCtx::coords(rel_path).expect("coords");
        FileCtx {
            rel_path: rel_path.to_string(),
            crate_name,
            is_bin,
            map: lexer::scan(text, &rules::rule_names()),
        }
    }

    #[test]
    fn faultpoint_catalog_workspace_check() {
        let catalog = "pub enum FaultPoint {\nDaemonReadTorn,\nDaemonStall,\n}\n\
                       impl FaultPoint {\n\
                       pub const ALL: [FaultPoint; 2] = \
                       [FaultPoint::DaemonReadTorn, FaultPoint::DaemonStall];\n}\n";
        let ws = |user_src: &str| Workspace {
            files: vec![
                file(rules::FAULTPOINT_CATALOG, catalog),
                file("crates/bench/src/service/daemon.rs", user_src),
            ],
            manifests: Vec::new(),
        };
        // Both variants fired somewhere: clean.
        let r = ws("fn f() { fire(FaultPoint::DaemonReadTorn); fire(FaultPoint::DaemonStall); }\n")
            .check();
        assert_eq!(r.errors(), 0, "{:#?}", r.diagnostics);
        // An unknown faultpoint errors at the usage site...
        let r = ws(
            "fn f() { fire(FaultPoint::DaemonReadTorn); fire(FaultPoint::Nonsense); \
                    fire(FaultPoint::DaemonStall); }\n",
        )
        .check();
        let unknown: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.rule == "faultpoint-catalog")
            .collect();
        assert_eq!(unknown.len(), 1, "{:#?}", r.diagnostics);
        assert!(unknown[0].message.contains("Nonsense"));
        assert_eq!(unknown[0].path, "crates/bench/src/service/daemon.rs");
        // ...and a never-fired variant errors at its declaration.
        let r = ws("fn f() { fire(FaultPoint::DaemonReadTorn); }\n").check();
        let stale: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.rule == "faultpoint-catalog")
            .collect();
        assert_eq!(stale.len(), 1, "{:#?}", r.diagnostics);
        assert!(stale[0].message.contains("DaemonStall"));
        assert_eq!(stale[0].path, rules::FAULTPOINT_CATALOG);
        // Single-file mode cannot see the other files: no stale check.
        let ws = Workspace::single_file(rules::FAULTPOINT_CATALOG, catalog).expect("ctx");
        assert_eq!(ws.check().errors(), 0);
    }

    #[test]
    fn crate_root_must_forbid_unsafe() {
        let ws = Workspace::single_file("crates/sim/src/lib.rs", "//! docs\npub fn f() {}\n")
            .expect("ctx");
        let report = ws.check();
        assert_eq!(report.errors(), 1);
        assert_eq!(report.diagnostics[0].rule, "forbid-unsafe-everywhere");
    }
}
