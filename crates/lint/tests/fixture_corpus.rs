//! The known-bad corpus: every rule must fire on its fixture — exactly
//! once — and the `detlint` binary must exit non-zero on each. Clean
//! fixtures (negative controls: justified pragmas, cfg(test) code,
//! tokens inside strings/comments) must produce no diagnostics at all.
//!
//! Fixture header convention (ordinary comments, ignored by the lexer):
//!
//! ```text
//! //@ as: crates/sim/src/fixture.rs      (virtual workspace path)
//! //@ expect: no-wall-clock              (rule that must fire once)
//! //@ clean                              (instead of expect: no diagnostics)
//! ```

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use contention_lint::Workspace;

struct Fixture {
    path: PathBuf,
    name: String,
    text: String,
    virtual_path: String,
    expect: Option<String>,
}

fn fixtures() -> Vec<Fixture> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut out = Vec::new();
    let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("fixtures dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no fixtures found in {}", dir.display());
    for path in paths {
        let text = fs::read_to_string(&path).expect("read fixture");
        let header = |key: &str| -> Option<String> {
            text.lines()
                .find_map(|l| l.strip_prefix(key).map(|v| v.trim().to_string()))
        };
        let virtual_path = header("//@ as:").expect("fixture missing //@ as: header");
        let expect = header("//@ expect:");
        let clean = text.lines().any(|l| l.trim() == "//@ clean");
        assert!(
            expect.is_some() != clean,
            "{}: exactly one of //@ expect / //@ clean required",
            path.display()
        );
        out.push(Fixture {
            name: path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default(),
            path,
            text,
            virtual_path,
            expect,
        });
    }
    out
}

#[test]
fn every_rule_fires_exactly_once_on_its_fixture() {
    let mut rules_covered = Vec::new();
    for fx in fixtures() {
        let ws = Workspace::single_file(&fx.virtual_path, &fx.text)
            .unwrap_or_else(|| panic!("{}: bad virtual path {}", fx.name, fx.virtual_path));
        let report = ws.check();
        match &fx.expect {
            Some(rule) => {
                let hits = report
                    .diagnostics
                    .iter()
                    .filter(|d| &d.rule == rule)
                    .count();
                assert_eq!(
                    hits, 1,
                    "{}: rule `{rule}` fired {hits} times, want exactly 1; got {:#?}",
                    fx.name, report.diagnostics
                );
                rules_covered.push(rule.clone());
            }
            None => {
                assert!(
                    report.diagnostics.is_empty(),
                    "{}: clean fixture produced {:#?}",
                    fx.name,
                    report.diagnostics
                );
            }
        }
    }
    // The corpus must cover every shipped rule plus pragma hygiene.
    for r in contention_lint::rules::RULES {
        assert!(
            rules_covered.iter().any(|c| c == r.name),
            "no known-bad fixture covers rule `{}`",
            r.name
        );
    }
    for hygiene in ["stale-pragma", "bad-pragma"] {
        assert!(
            rules_covered.iter().any(|c| c == hygiene),
            "no known-bad fixture covers `{hygiene}`"
        );
    }
}

#[test]
fn detlint_binary_exits_nonzero_on_every_bad_fixture() {
    for fx in fixtures() {
        let out = Command::new(env!("CARGO_BIN_EXE_detlint"))
            .args([
                "check-file",
                fx.path.to_str().expect("utf-8 path"),
                "--as",
                &fx.virtual_path,
                "--deny-warnings",
            ])
            .output()
            .expect("run detlint");
        let stdout = String::from_utf8_lossy(&out.stdout);
        if fx.expect.is_some() {
            assert!(
                !out.status.success(),
                "{}: detlint exited 0 on a known-bad fixture\n{stdout}",
                fx.name
            );
        } else {
            assert!(
                out.status.success(),
                "{}: detlint failed a clean fixture\n{stdout}",
                fx.name
            );
        }
    }
}

#[test]
fn json_format_round_trips_the_verdict() {
    for fx in fixtures() {
        let out = Command::new(env!("CARGO_BIN_EXE_detlint"))
            .args([
                "check-file",
                fx.path.to_str().expect("utf-8 path"),
                "--as",
                &fx.virtual_path,
                "--format",
                "json",
            ])
            .output()
            .expect("run detlint");
        let stdout = String::from_utf8_lossy(&out.stdout);
        let ok = stdout.contains("\"ok\":true");
        match &fx.expect {
            // Warn-only fixtures report ok:true errors:0 but list the
            // diagnostic; everything else is an error.
            Some(rule) => assert!(
                stdout.contains(&format!("\"rule\":\"{rule}\"")),
                "{}: JSON missing rule\n{stdout}",
                fx.name
            ),
            None => assert!(ok, "{}: JSON not ok\n{stdout}", fx.name),
        }
    }
}

#[test]
fn list_rules_names_every_rule() {
    let out = Command::new(env!("CARGO_BIN_EXE_detlint"))
        .arg("--list-rules")
        .output()
        .expect("run detlint");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for r in contention_lint::rules::RULES {
        assert!(stdout.contains(r.name), "--list-rules missing {}", r.name);
    }
    assert!(stdout.contains("stale-pragma"));
}
