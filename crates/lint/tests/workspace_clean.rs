//! The self-check: `detlint` must run clean on the live workspace, so
//! the tree and CI can never drift apart — a change that introduces a
//! violation fails `cargo test` locally exactly like the CI step.

use std::path::Path;
use std::process::Command;

use contention_lint::Workspace;

fn workspace_root() -> &'static Path {
    // crates/lint -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
}

#[test]
fn live_workspace_has_no_errors_and_no_stale_pragmas() {
    let ws = Workspace::load(workspace_root()).expect("load workspace");
    let report = ws.check();
    let errors: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == contention_lint::rules::Severity::Error)
        .collect();
    assert!(
        errors.is_empty(),
        "the workspace violates its own invariants:\n{}",
        errors
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Warnings are advisory, but the tree currently carries none in
    // non-test library code — keep it that way or justify the change.
    assert_eq!(
        report.warnings(),
        0,
        "new advisory warnings:\n{}",
        report
            .diagnostics
            .iter()
            .filter(|d| d.severity == contention_lint::rules::Severity::Warn)
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn sanity_the_scan_actually_covers_the_workspace() {
    let ws = Workspace::load(workspace_root()).expect("load workspace");
    let report = ws.check();
    // All six product crates plus the lint crate and the root umbrella
    // have src trees; a scan that sees too few files is scanning the
    // wrong place and would vacuously pass.
    assert!(
        report.files_scanned > 60,
        "only {} files scanned — wrong root?",
        report.files_scanned
    );
}

#[test]
fn detlint_check_binary_passes_on_the_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_detlint"))
        .args(["check", "--root"])
        .arg(workspace_root())
        .output()
        .expect("run detlint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "detlint check failed on the live workspace:\n{stdout}"
    );
}
