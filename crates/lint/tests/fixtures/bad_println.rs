//@ as: crates/analysis/src/fixture.rs
//@ expect: no-println-in-libs
// Known-bad: stdout reporting from library code. Output belongs to
// observers/returned values; binaries own stdout.

pub fn report(x: f64) {
    println!("result: {x}");
}
