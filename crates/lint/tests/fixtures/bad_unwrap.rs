//@ as: crates/sim/src/fixture.rs
//@ expect: no-unwrap
//@ severity: warn
// Known-bad (advisory): bare unwrap in library code hides the invariant
// it relies on.

pub fn first(v: &[u64]) -> u64 {
    v.first().copied().unwrap()
}
