//@ as: crates/core/src/fixture.rs
//@ expect: no-wall-clock
// Known-bad: wall-clock timestamp in a deterministic crate. Any value
// derived from it diverges between runs and poisons golden fingerprints.

pub fn stamp() -> u128 {
    std::time::Instant::now().elapsed().as_nanos()
}
