//@ as: crates/sim/src/fixture.rs
//@ clean
// Negative control: a justified pragma suppresses the diagnostic and
// is counted as used (no stale-pragma follow-up).

pub fn stamp() -> u128 {
    // detlint::allow(no-wall-clock): fixture demonstrating a justified escape
    std::time::Instant::now().elapsed().as_nanos()
}
