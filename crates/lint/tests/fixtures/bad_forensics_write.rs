//@ as: crates/bench/src/forensics/fixture.rs
//@ expect: atomic-writes-only
// Known-bad: a bare File::create in the forensics layer. Checkpoint
// handles promise crash-safe persistence; a torn handle would make a
// later daemon life answer window queries against a half-written
// rebuild recipe instead of failing loudly.

use std::io::Write;

pub fn save_handle(path: &std::path::Path, text: &str) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(text.as_bytes())
}
