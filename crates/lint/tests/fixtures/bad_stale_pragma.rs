//@ as: crates/sim/src/fixture.rs
//@ expect: stale-pragma
// Known-bad: an allow pragma with nothing left to suppress. Escapes
// must not outlive their justification.

// detlint::allow(no-wall-clock): the Instant::now this excused is gone
pub fn quiet() -> u64 {
    42
}
