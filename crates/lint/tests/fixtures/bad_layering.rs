//@ as: crates/sim/src/fixture.rs
//@ expect: layering
// Known-bad: the simulator reaching up into the bench harness. The DAG
// is backoff/sim/analysis at the bottom, bench at the top.

use contention_bench::campaign::SweepSpec;

pub fn smuggle(spec: &SweepSpec) -> usize {
    spec.axes.len()
}
