//@ as: crates/sim/src/fixture.rs
//@ expect: no-wall-clock
// Known-bad: thread identity is scheduler state; anything keyed on it
// varies run to run.

pub fn worker_tag() -> String {
    format!("{:?}", std::thread::current().id())
}
