//@ as: crates/bench/src/service/faults.rs
//@ expect: faultpoint-catalog
//
// A faultpoint declared but missing from the `FaultPoint::ALL`
// registry: chaos schedules are built from `ALL`, so the variant would
// silently never fire. (`DaemonReadTorn` is absent; the duplicate
// `JournalAppendWrite` entry keeps the array length honest.)

pub enum FaultPoint {
    JournalAppendWrite,
    DaemonReadTorn,
}

impl FaultPoint {
    pub const ALL: [FaultPoint; 2] = [
        FaultPoint::JournalAppendWrite,
        FaultPoint::JournalAppendWrite,
    ];
}
