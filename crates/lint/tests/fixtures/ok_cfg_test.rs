//@ as: crates/sim/src/fixture.rs
//@ clean
// Negative control: test code is exempt from every rule — tests may
// time things, iterate hash maps, and unwrap freely.

pub fn live() -> u64 {
    7
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn timing_and_hashes_are_fine_here() {
        let t = std::time::Instant::now();
        let mut m: HashMap<u32, u32> = HashMap::new();
        m.insert(1, 2);
        let total: u32 = m.values().sum();
        assert_eq!(total, 2);
        assert!(t.elapsed().as_secs() < 3600);
        let v: Vec<u32> = vec![1];
        assert_eq!(v.first().copied().unwrap(), 1);
    }
}
