//@ as: crates/sim/src/fixture.rs
//@ expect: no-hash-iteration
// Known-bad: iterating a HashMap in a deterministic crate. Report order
// would depend on the hasher's per-process seed.

use std::collections::HashMap;

pub fn totals(counts: &HashMap<u64, u64>) -> u64 {
    let mut sum = 0;
    for (_, v) in counts.iter() {
        sum += v;
    }
    sum
}
