//@ as: crates/sim/src/fixture.rs
//@ expect: bad-pragma
// Known-bad: a pragma without a written justification. The reason is
// the contract — no reason, no escape.

// detlint::allow(no-wall-clock)
pub fn stamp() -> u128 {
    std::time::Instant::now().elapsed().as_nanos()
}
