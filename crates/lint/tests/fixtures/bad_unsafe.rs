//@ as: crates/backoff/src/fixture.rs
//@ expect: forbid-unsafe-everywhere
// Known-bad: an unsafe block outside the documented signal-shim file.

pub fn sneaky(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}
