//@ as: crates/sim/src/fixture.rs
//@ clean
// Negative control: forbidden tokens inside comments, doc prose, and
// string literals must not fire — the lexer blanks them.

/// Docs may say Instant::now or HashMap.iter() or unsafe freely.
pub fn describe() -> &'static str {
    // A comment mentioning println! and SystemTime is fine too.
    "Instant::now unsafe println! fs::write .unwrap() for x in map.iter()"
}

pub fn raw() -> &'static str {
    r#"SystemTime::now() and thread::current() in a raw string"#
}
