//@ as: crates/bench/src/service/fixture.rs
//@ expect: atomic-writes-only
// Known-bad: a bare fs::write in the service layer. A crash mid-write
// leaves a torn artifact that a resumed job would trust.

pub fn save(path: &std::path::Path, text: &str) -> std::io::Result<()> {
    std::fs::write(path, text)
}
