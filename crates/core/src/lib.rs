//! # contention-core
//!
//! The **Chen–Jiang–Zheng contention-resolution protocol** (PODC 2021,
//! *Tight Trade-off in Contention Resolution without Collision Detection*):
//! for any admissible jamming-tolerance function `g` (with
//! `log g(x) = O(√log x)`), the protocol achieves `(f, g)`-throughput with
//! `f(x) = Θ(log x / log² g(x))` — the best possible by Theorem 1.3.
//!
//! ## Highlights
//!
//! * With `g` constant (a constant fraction of all slots jammed — the worst
//!   case) the protocol still delivers `Θ(t / log t)` messages in `t` slots.
//! * With `g(x) = 2^Θ(√log x)` the protocol achieves constant throughput,
//!   matching the no-jamming optimum of Bender et al. (STOC 2020).
//!
//! ## Usage
//!
//! ```
//! use contention_core::{CjzFactory, ProtocolParams, ThroughputVerifier};
//! use contention_sim::prelude::*;
//!
//! // Batch of 32 nodes, 10% of slots jammed at random.
//! let params = ProtocolParams::constant_jamming();
//! let factory = CjzFactory::new(params.clone());
//! let adversary = CompositeAdversary::new(
//!     BatchArrival::at_start(32),
//!     RandomJamming::new(0.1),
//! );
//! let mut sim = Simulator::new(SimConfig::with_seed(7), factory, adversary);
//! sim.run_until_drained(200_000);
//! let trace = sim.into_trace();
//! assert_eq!(trace.total_successes(), 32);
//!
//! // Check the (f,g)-throughput bound on every prefix.
//! let report = ThroughputVerifier::for_params(&params).check(&trace, 8.0);
//! assert!(report.ok, "worst ratio {}", report.max_ratio);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dual;
pub mod oracle;
pub mod params;
pub mod phase;
pub mod protocol;
pub mod throughput;

pub use dual::{DualCjzFactory, DualCjzProtocol};
pub use oracle::{OracleParityFactory, OracleParityProtocol};
pub use params::ProtocolParams;
pub use phase::{PhaseKind, PhaseStats};
pub use protocol::{CjzFactory, CjzProtocol, FSendCount};
pub use throughput::{ThroughputReport, ThroughputVerifier};
