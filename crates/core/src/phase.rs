//! Phase bookkeeping for the three-phase protocol (Section 2.1).
//!
//! A node moves through:
//!
//! * **Phase 1** — synchronize: `(f/a)`-backoff on the channel given by the
//!   parity of its arrival slot, until it hears *any* success. The channel
//!   that carried that success becomes (from this node's perspective) the
//!   data channel.
//! * **Phase 2** — queue at the control channel: `(f/a)`-backoff on the
//!   *other* channel (the control channel), until a success occurs there.
//!   That success synchronizes the node with everyone already in Phase 3.
//! * **Phase 3** — batch: `h_ctrl`-batch on the control channel and
//!   `h_data`-batch on the data channel, restarting (and thereby **swapping
//!   channels**) at every control-channel success.
//!
//! All slot arithmetic is on the node's local clock; channels are parity
//! classes of local slot indices relative to an *anchor* (the local slot of
//! the success that started the current phase).

use std::fmt;

/// Which phase a node is currently executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// Phase 1: synchronizing via backoff on the arrival-parity channel.
    One,
    /// Phase 2: backoff on the control channel.
    Two,
    /// Phase 3: ctrl-batch + data-batch.
    Three,
}

impl fmt::Display for PhaseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhaseKind::One => f.write_str("phase-1"),
            PhaseKind::Two => f.write_str("phase-2"),
            PhaseKind::Three => f.write_str("phase-3"),
        }
    }
}

/// Counters of phase activity, for diagnostics and the ablation experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Local slot at which Phase 2 was entered, if it was.
    pub entered_phase2: Option<u64>,
    /// Local slot at which Phase 3 was first entered, if it was.
    pub entered_phase3: Option<u64>,
    /// Number of Phase 3 (re)starts.
    pub phase3_restarts: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(PhaseKind::One.to_string(), "phase-1");
        assert_eq!(PhaseKind::Two.to_string(), "phase-2");
        assert_eq!(PhaseKind::Three.to_string(), "phase-3");
    }

    #[test]
    fn stats_default() {
        let s = PhaseStats::default();
        assert_eq!(s.entered_phase2, None);
        assert_eq!(s.entered_phase3, None);
        assert_eq!(s.phase3_restarts, 0);
    }
}
