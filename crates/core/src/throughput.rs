//! The (f,g)-throughput verifier (Definition 1.1).
//!
//! An algorithm achieves (f,g)-throughput when, for every `t ≥ 1`,
//!
//! ```text
//! a_t ≤ n_t·f(t) + d_t·g(t)      (w.h.p. in n_t)
//! ```
//!
//! where `a_t` / `n_t` / `d_t` count active slots, arrivals, and jammed
//! slots in `[1, t]`. [`ThroughputVerifier`] replays a [`Trace`] and reports
//! the worst ratio `a_t / (n_t·f(t) + d_t·g(t))` over all prefixes — the
//! quantity the trade-off experiments track. Ratios ≤ some constant,
//! uniformly over `t` and workloads, are the empirical signature of
//! Theorem 1.2; unbounded growth is the signature of Theorem 1.3 failure.

use contention_backoff::{FFunction, GFunction};
use contention_sim::{CumulativeTrace, Trace};

/// Verdict of a throughput check.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputReport {
    /// `max_t a_t / (n_t·f(t) + d_t·g(t))` over checked prefixes with a
    /// positive denominator.
    pub max_ratio: f64,
    /// The prefix length attaining `max_ratio`.
    pub worst_t: u64,
    /// Value of `a_t` at the worst prefix.
    pub worst_active: u64,
    /// Value of `n_t·f(t) + d_t·g(t)` at the worst prefix.
    pub worst_budget: f64,
    /// Ratio samples at dyadic prefixes `(t, ratio)` for series plots.
    pub samples: Vec<(u64, f64)>,
    /// Whether `max_ratio ≤ tolerance` for the tolerance passed to
    /// [`ThroughputVerifier::check`].
    pub ok: bool,
}

/// Checks a trace against an (f,g) budget.
///
/// # Examples
///
/// ```
/// use contention_core::{CjzFactory, ProtocolParams, ThroughputVerifier};
/// use contention_sim::prelude::*;
///
/// let params = ProtocolParams::constant_jamming();
/// let factory = CjzFactory::new(params.clone());
/// let adversary = CompositeAdversary::new(BatchArrival::at_start(8), NoJamming);
/// let mut sim = Simulator::new(SimConfig::with_seed(7), factory, adversary);
/// sim.run_until_drained(100_000);
///
/// // Every prefix's active-slot count must stay within the budget
/// // n_t·f(t) + d_t·g(t), up to the calibrated constant.
/// let report = ThroughputVerifier::for_params(&params)
///     .check(&sim.into_trace(), 16.0);
/// assert!(report.ok, "worst ratio {}", report.max_ratio);
/// ```
#[derive(Debug, Clone)]
pub struct ThroughputVerifier {
    f: FFunction,
    g: GFunction,
}

impl ThroughputVerifier {
    /// Verifier for the given `f` and `g`.
    pub fn new(f: FFunction, g: GFunction) -> Self {
        ThroughputVerifier { f, g }
    }

    /// Verifier matching a protocol's own parameters.
    pub fn for_params(params: &crate::params::ProtocolParams) -> Self {
        ThroughputVerifier {
            f: params.f(),
            g: params.g().clone(),
        }
    }

    /// The budget `n_t·f(t) + d_t·g(t)` at prefix `t` of `cum`.
    pub fn budget(&self, cum: &CumulativeTrace, t: u64) -> f64 {
        cum.arrivals(t) as f64 * self.f.at(t) + cum.jammed(t) as f64 * self.g.at(t)
    }

    /// Check every prefix of `trace`; `ok` iff the worst ratio is at most
    /// `tolerance`.
    ///
    /// Prefixes with zero budget are skipped when also inactive (`a_t = 0`);
    /// a prefix with active slots but zero budget (possible only with
    /// pre-seeded nodes that bypass the adversary) counts as ratio `∞`.
    pub fn check(&self, trace: &Trace, tolerance: f64) -> ThroughputReport {
        let cum = trace.cumulative();
        let horizon = cum.len();
        let mut max_ratio = 0.0f64;
        let mut worst_t = 0u64;
        let mut worst_active = 0u64;
        let mut worst_budget = 0.0f64;
        let mut samples = Vec::new();
        let mut next_sample = 1u64;
        for t in 1..=horizon {
            let active = cum.active(t);
            let budget = self.budget(&cum, t);
            let ratio = if budget > 0.0 {
                active as f64 / budget
            } else if active == 0 {
                0.0
            } else {
                f64::INFINITY
            };
            if ratio > max_ratio {
                max_ratio = ratio;
                worst_t = t;
                worst_active = active;
                worst_budget = budget;
            }
            if t == next_sample || t == horizon {
                samples.push((t, ratio));
                next_sample = next_sample.saturating_mul(2);
            }
        }
        ThroughputReport {
            max_ratio,
            worst_t,
            worst_active,
            worst_budget,
            samples,
            ok: max_ratio <= tolerance,
        }
    }

    /// The `f` in use.
    pub fn f(&self) -> &FFunction {
        &self.f
    }

    /// The `g` in use.
    pub fn g(&self) -> &GFunction {
        &self.g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ProtocolParams;
    use contention_sim::node::AlwaysBroadcast;
    use contention_sim::prelude::*;

    fn drain_one_node_trace() -> Trace {
        // One node, broadcasts immediately, succeeds in slot 1.
        let factory =
            |_: NodeId| -> Box<dyn contention_sim::Protocol> { Box::new(AlwaysBroadcast) };
        let adv = CompositeAdversary::new(BatchArrival::at_start(1), NoJamming);
        let mut sim = Simulator::new(SimConfig::with_seed(1), factory, adv);
        sim.run_for(4);
        sim.into_trace()
    }

    #[test]
    fn single_success_within_budget() {
        let trace = drain_one_node_trace();
        let params = ProtocolParams::default();
        let v = ThroughputVerifier::for_params(&params);
        let rep = v.check(&trace, 1.0);
        // 1 arrival, f(t) >= 1 always: a_t = 1 <= 1 * f(t).
        assert!(rep.ok, "report: {rep:?}");
        assert!(rep.max_ratio <= 1.0);
        assert!(!rep.samples.is_empty());
    }

    #[test]
    fn active_with_zero_budget_is_infinite() {
        // Pre-seeded node (no adversary arrival => n_t = 0) that never
        // sends: active slots with zero budget.
        let factory = |_: NodeId| -> Box<dyn contention_sim::Protocol> {
            Box::new(contention_sim::node::NeverBroadcast)
        };
        let mut sim = Simulator::new(SimConfig::with_seed(2), factory, NullAdversary);
        sim.seed_nodes(1);
        sim.run_for(3);
        let trace = sim.into_trace();
        let v = ThroughputVerifier::new(
            ProtocolParams::default().f(),
            ProtocolParams::default().g().clone(),
        );
        let rep = v.check(&trace, 1e9);
        assert!(rep.max_ratio.is_infinite());
        assert!(!rep.ok);
    }

    #[test]
    fn empty_trace_trivially_ok() {
        let trace = Trace::new();
        let params = ProtocolParams::default();
        let rep = ThroughputVerifier::for_params(&params).check(&trace, 1.0);
        assert!(rep.ok);
        assert_eq!(rep.max_ratio, 0.0);
        assert_eq!(rep.worst_t, 0);
    }

    #[test]
    fn budget_formula() {
        let trace = drain_one_node_trace();
        let cum = trace.cumulative();
        let params = ProtocolParams::default(); // g = const 2, a = c2 = 1
        let v = ThroughputVerifier::for_params(&params);
        // n_4 = 1, d_4 = 0; f(4) = log2c(4)/log2c(2)^2 = 2/1 = 2.
        assert!((v.budget(&cum, 4) - 2.0).abs() < 1e-12);
        assert!(v.f().at(4) >= 1.0);
        assert_eq!(*v.g(), contention_backoff::GFunction::Constant(2.0));
    }

    #[test]
    fn jammed_slots_expand_budget() {
        // All slots jammed, one node present: active but budgeted via d_t.
        let factory =
            |_: NodeId| -> Box<dyn contention_sim::Protocol> { Box::new(AlwaysBroadcast) };
        let adv = CompositeAdversary::new(BatchArrival::at_start(1), FrontLoadedJamming::new(100));
        let mut sim = Simulator::new(SimConfig::with_seed(3), factory, adv);
        sim.run_for(100);
        let trace = sim.into_trace();
        assert_eq!(trace.total_successes(), 0);
        let params = ProtocolParams::default();
        let v = ThroughputVerifier::for_params(&params);
        let rep = v.check(&trace, 2.0);
        // a_t = t, budget ≈ f(t) + 2t: ratio < 1 for all t ≥ 1.
        assert!(rep.ok, "max ratio {}", rep.max_ratio);
    }

    #[test]
    fn samples_are_dyadic() {
        let trace = drain_one_node_trace();
        let params = ProtocolParams::default();
        let rep = ThroughputVerifier::for_params(&params).check(&trace, 10.0);
        let ts: Vec<u64> = rep.samples.iter().map(|s| s.0).collect();
        assert_eq!(ts, vec![1, 2, 4]);
    }
}
