//! The Chen–Jiang–Zheng protocol (Section 2.1) as a [`Protocol`] state
//! machine.
//!
//! The node-local realization of the algorithm:
//!
//! * Local slots are numbered `0, 1, 2, …` from the node's arrival. The two
//!   conceptual channels are the parity classes of the local slot index
//!   (footnote 2: a node need not know whether its slots are globally odd
//!   or even — all parity arithmetic is relative).
//! * **Phase 1** (anchor −1, i.e. arrival): run `(f/a)`-backoff on local
//!   even slots. On hearing any success at local slot `l₁` → Phase 2 with
//!   anchor `l₁`.
//! * **Phase 2** (anchor `l₁`): run a *fresh* `(f/a)`-backoff on slots of
//!   parity `l₁+1` (the control channel), ignoring successes on the other
//!   channel. On a control-channel success at `l₂` → Phase 3 with anchor
//!   `l₂`.
//! * **Phase 3** (anchor `l₃`): `h_ctrl`-batch on slots of parity `l₃+1`,
//!   `h_data`-batch on slots of parity `l₃+2`. A success on the *control*
//!   channel at `l₃'` restarts Phase 3 with anchor `l₃'` — and since
//!   `l₃'+1` has the parity of the old data channel, the channels swap, as
//!   prescribed ("whenever a node (re)starts Phase 3, it swaps its data
//!   channel and control channel").
//!
//! A node whose own broadcast succeeds leaves the system (engine-enforced),
//! so the machine never needs a terminal state.

use contention_backoff::{FFunction, HBackoff, HBatch, SendCount};
use contention_sim::{Action, Feedback, NodeId, Protocol, ProtocolFactory};
use rand::RngCore;

use crate::params::ProtocolParams;
use crate::phase::{PhaseKind, PhaseStats};

/// Stage send-counter implementing the `(1/a·f)`-backoff density:
/// `h(L) = f(L)/a` sends per stage of length `L`.
#[derive(Debug, Clone)]
pub struct FSendCount {
    f: FFunction,
}

impl FSendCount {
    /// Build from the derived `f` (which already knows `a`).
    pub fn new(f: FFunction) -> Self {
        FSendCount { f }
    }
}

impl SendCount for FSendCount {
    fn count(&self, stage_len: u64) -> u64 {
        self.f.backoff_send_count(stage_len)
    }
}

#[derive(Clone)]
enum State {
    One {
        backoff: HBackoff<FSendCount>,
    },
    Two {
        anchor: u64,
        backoff: HBackoff<FSendCount>,
    },
    Three {
        anchor: u64,
        ctrl: HBatch,
        data: HBatch,
    },
}

/// The paper's algorithm, one instance per node.
#[derive(Clone)]
pub struct CjzProtocol {
    params: ProtocolParams,
    f: FFunction,
    state: State,
    stats: PhaseStats,
    /// Pristine Phase-3 batches, built once per node: every control-channel
    /// success restarts Phase 3 for every Phase-3 node, so restart cost is
    /// hot-path cost. Cloning these reuses the interned probability tables
    /// instead of re-fetching them through the process-wide intern lock.
    ctrl_proto: HBatch,
    data_proto: HBatch,
    /// Ablation toggle: when `false`, Phase-3 restarts keep the *same*
    /// channel assignment (anchor parity forced) instead of swapping.
    swap_on_restart: bool,
}

impl CjzProtocol {
    /// Fresh node in Phase 1.
    pub fn new(params: ProtocolParams) -> Self {
        let f = params.f();
        let backoff = HBackoff::new(FSendCount::new(f.clone()));
        let ctrl_proto = HBatch::ctrl(params.c3());
        let data_proto = HBatch::data();
        CjzProtocol {
            params,
            f,
            state: State::One { backoff },
            stats: PhaseStats::default(),
            ctrl_proto,
            data_proto,
            swap_on_restart: true,
        }
    }

    /// Ablation: disable the channel swap on Phase-3 restart.
    pub fn without_channel_swap(mut self) -> Self {
        self.swap_on_restart = false;
        self
    }

    /// Current phase.
    pub fn phase(&self) -> PhaseKind {
        match self.state {
            State::One { .. } => PhaseKind::One,
            State::Two { .. } => PhaseKind::Two,
            State::Three { .. } => PhaseKind::Three,
        }
    }

    /// Phase statistics (diagnostics).
    pub fn stats(&self) -> PhaseStats {
        self.stats
    }

    /// The parameters this node runs with.
    pub fn params(&self) -> &ProtocolParams {
        &self.params
    }

    fn fresh_backoff(&self) -> HBackoff<FSendCount> {
        HBackoff::new(FSendCount::new(self.f.clone()))
    }

    /// Does local slot `slot` belong to the channel anchored at
    /// `anchor + offset` (i.e. has the parity of `anchor + offset`)?
    #[inline]
    fn on_channel(slot: u64, anchor: u64, offset: u64) -> bool {
        (slot.wrapping_sub(anchor.wrapping_add(offset))).is_multiple_of(2)
    }
}

impl CjzProtocol {
    /// The act body, generic over the RNG: `act` passes `dyn RngCore`
    /// through unchanged while `act_fast` monomorphizes over the engine's
    /// concrete RNG (identical draw sequence, no virtual dispatch per
    /// sample).
    fn act_impl<R: RngCore + ?Sized>(&mut self, local_slot: u64, rng: &mut R) -> Action {
        let send = match &mut self.state {
            State::One { backoff } => {
                // Arrival-parity channel = even local slots.
                if local_slot.is_multiple_of(2) {
                    backoff.next(rng)
                } else {
                    false
                }
            }
            State::Two { anchor, backoff } => {
                // Control channel: parity of anchor+1.
                if Self::on_channel(local_slot, *anchor, 1) {
                    backoff.next(rng)
                } else {
                    false
                }
            }
            State::Three { anchor, ctrl, data } => {
                // The two offsets partition the parities: anchor+1 is the
                // control channel, the other parity the data channel.
                if Self::on_channel(local_slot, *anchor, 1) {
                    ctrl.next(rng)
                } else {
                    data.next(rng)
                }
            }
        };
        if send {
            Action::Broadcast
        } else {
            Action::Listen
        }
    }
}

impl Protocol for CjzProtocol {
    fn name(&self) -> &'static str {
        "cjz"
    }

    fn try_clone_box(&self) -> Option<Box<dyn Protocol + Send>> {
        Some(Box::new(self.clone()))
    }

    fn act(&mut self, local_slot: u64, rng: &mut dyn RngCore) -> Action {
        self.act_impl(local_slot, rng)
    }

    fn act_fast(&mut self, local_slot: u64, rng: &mut rand::rngs::SmallRng) -> Action {
        self.act_impl(local_slot, rng)
    }

    fn observes_failures(&self) -> bool {
        // No-success feedback carries no information in this model and the
        // state machine below only transitions on successes.
        false
    }

    fn observe(&mut self, local_slot: u64, feedback: Feedback) {
        if !feedback.is_success() {
            return;
        }
        match &self.state {
            State::One { .. } => {
                // Any success synchronizes: the success channel becomes the
                // data channel, the other one (parity local_slot+1) the
                // control channel for Phase 2.
                self.stats.entered_phase2 = Some(local_slot);
                self.state = State::Two {
                    anchor: local_slot,
                    backoff: self.fresh_backoff(),
                };
            }
            State::Two { anchor, .. } => {
                // Only control-channel successes (parity anchor+1) matter.
                if Self::on_channel(local_slot, *anchor, 1) {
                    self.stats.entered_phase3 = Some(local_slot);
                    self.state = State::Three {
                        anchor: local_slot,
                        ctrl: self.ctrl_proto.clone(),
                        data: self.data_proto.clone(),
                    };
                }
            }
            State::Three { anchor, .. } => {
                // A control-channel success restarts Phase 3, swapping
                // channels (the new anchor lies on the old control channel,
                // so parity(anchor'+1) = old data parity).
                if Self::on_channel(local_slot, *anchor, 1) {
                    self.stats.phase3_restarts += 1;
                    let new_anchor = if self.swap_on_restart {
                        local_slot
                    } else {
                        // Ablation: keep the old channel roles by anchoring
                        // one slot later (same parity as the old anchor).
                        local_slot + 1
                    };
                    self.state = State::Three {
                        anchor: new_anchor,
                        ctrl: self.ctrl_proto.clone(),
                        data: self.data_proto.clone(),
                    };
                }
            }
        }
    }
}

impl std::fmt::Debug for CjzProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CjzProtocol")
            .field("phase", &self.phase())
            .field("params", &self.params.label())
            .finish_non_exhaustive()
    }
}

/// Factory spawning [`CjzProtocol`] nodes with shared parameters.
///
/// # Examples
///
/// ```
/// use contention_core::{CjzFactory, ProtocolParams};
/// use contention_sim::prelude::*;
///
/// // Drain a clean 16-node batch with the worst-case tuning.
/// let factory = CjzFactory::new(ProtocolParams::constant_jamming());
/// let adversary = CompositeAdversary::new(BatchArrival::at_start(16), NoJamming);
/// let mut sim = Simulator::new(SimConfig::with_seed(42), factory, adversary);
/// assert_eq!(sim.run_until_drained(200_000), StopReason::Drained);
/// assert_eq!(sim.trace().total_successes(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct CjzFactory {
    params: ProtocolParams,
    swap_on_restart: bool,
}

impl CjzFactory {
    /// Factory with the given parameters.
    pub fn new(params: ProtocolParams) -> Self {
        CjzFactory {
            params,
            swap_on_restart: true,
        }
    }

    /// Ablation: spawn nodes that do not swap channels on Phase-3 restart.
    pub fn without_channel_swap(mut self) -> Self {
        self.swap_on_restart = false;
        self
    }

    /// The parameters.
    pub fn params(&self) -> &ProtocolParams {
        &self.params
    }
}

impl ProtocolFactory for CjzFactory {
    fn spawn(&self, _id: NodeId) -> Box<dyn Protocol> {
        let node = CjzProtocol::new(self.params.clone());
        Box::new(if self.swap_on_restart {
            node
        } else {
            node.without_channel_swap()
        })
    }

    fn algorithm_name(&self) -> String {
        "cjz".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention_sim::NodeId;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    fn proto() -> CjzProtocol {
        CjzProtocol::new(ProtocolParams::default())
    }

    #[test]
    fn starts_in_phase_one_and_broadcasts_first_slot() {
        let mut p = proto();
        assert_eq!(p.phase(), PhaseKind::One);
        // Local slot 0 is on the arrival channel; backoff stage 0 (len 1)
        // must send.
        assert_eq!(p.act(0, &mut rng(1)), Action::Broadcast);
    }

    #[test]
    fn phase_one_silent_on_odd_slots() {
        let mut p = proto();
        let mut r = rng(2);
        for slot in [1u64, 3, 5, 7, 9, 11] {
            assert_eq!(p.act(slot, &mut r), Action::Listen, "slot {slot}");
        }
    }

    #[test]
    fn success_moves_phase_one_to_two() {
        let mut p = proto();
        p.observe(4, Feedback::Success(NodeId::new(99)));
        assert_eq!(p.phase(), PhaseKind::Two);
        assert_eq!(p.stats().entered_phase2, Some(4));
    }

    #[test]
    fn no_success_keeps_phase_one() {
        let mut p = proto();
        for slot in 0..50 {
            p.observe(slot, Feedback::NoSuccess);
        }
        assert_eq!(p.phase(), PhaseKind::One);
    }

    #[test]
    fn phase_two_listens_on_data_channel() {
        let mut p = proto();
        // Success at local slot 4 (even) => control channel = odd parity.
        p.observe(4, Feedback::Success(NodeId::new(0)));
        let mut r = rng(3);
        // Slot 5 is control (anchor+1): fresh backoff stage 0 sends.
        assert_eq!(p.act(5, &mut r), Action::Broadcast);
        // Slot 6 is data channel: always listen in Phase 2.
        assert_eq!(p.act(6, &mut r), Action::Listen);
    }

    #[test]
    fn phase_two_ignores_data_channel_success() {
        let mut p = proto();
        p.observe(4, Feedback::Success(NodeId::new(0)));
        assert_eq!(p.phase(), PhaseKind::Two);
        // Success on data channel (even parity, like the anchor): ignored.
        p.observe(6, Feedback::Success(NodeId::new(1)));
        assert_eq!(p.phase(), PhaseKind::Two);
        // Success on control channel (odd parity): Phase 3.
        p.observe(7, Feedback::Success(NodeId::new(2)));
        assert_eq!(p.phase(), PhaseKind::Three);
        assert_eq!(p.stats().entered_phase3, Some(7));
    }

    #[test]
    fn phase_three_consults_correct_batches() {
        let mut p = proto();
        p.observe(0, Feedback::Success(NodeId::new(0))); // -> Phase 2, anchor 0
        p.observe(1, Feedback::Success(NodeId::new(1))); // ctrl success -> Phase 3, anchor 1
        assert_eq!(p.phase(), PhaseKind::Three);
        let mut r = rng(4);
        // Slot 2 = anchor+1: ctrl batch k=1, h_ctrl(1) clamps to prob 1.
        assert_eq!(p.act(2, &mut r), Action::Broadcast);
        // Slot 3 = anchor+2: data batch k=1, prob 1.
        assert_eq!(p.act(3, &mut r), Action::Broadcast);
    }

    #[test]
    fn phase_three_restart_swaps_channels() {
        let mut p = proto();
        p.observe(0, Feedback::Success(NodeId::new(0)));
        p.observe(1, Feedback::Success(NodeId::new(1)));
        assert_eq!(p.phase(), PhaseKind::Three);
        // Control channel is parity of anchor+1 = parity(2) = even.
        // Data-channel success (odd slot): no restart.
        p.observe(3, Feedback::Success(NodeId::new(2)));
        assert_eq!(p.stats().phase3_restarts, 0);
        // Control-channel success at slot 4 (even): restart, channels swap.
        p.observe(4, Feedback::Success(NodeId::new(3)));
        assert_eq!(p.stats().phase3_restarts, 1);
        let mut r = rng(5);
        // New anchor 4: ctrl channel = parity(5) = odd (was data parity).
        assert_eq!(p.act(5, &mut r), Action::Broadcast); // ctrl k=1, prob 1
        assert_eq!(p.act(6, &mut r), Action::Broadcast); // data k=1, prob 1
    }

    #[test]
    fn ablation_no_swap_keeps_parity() {
        let mut p = proto().without_channel_swap();
        p.observe(0, Feedback::Success(NodeId::new(0)));
        p.observe(1, Feedback::Success(NodeId::new(1)));
        // anchor 1: ctrl parity = parity(2) = even.
        p.observe(4, Feedback::Success(NodeId::new(2))); // ctrl success
        assert_eq!(p.stats().phase3_restarts, 1);
        // Without swap the new anchor is 5, so ctrl parity = parity(6) =
        // even — unchanged.
        let mut r = rng(6);
        assert_eq!(p.act(6, &mut r), Action::Broadcast); // ctrl k=1
    }

    #[test]
    fn factory_spawns_cjz() {
        let f = CjzFactory::new(ProtocolParams::default());
        let node = f.spawn(NodeId::new(0));
        assert_eq!(node.name(), "cjz");
        assert_eq!(f.algorithm_name(), "cjz");
        assert!(f.params().label().contains("cjz"));
    }

    #[test]
    fn debug_impl() {
        let p = proto();
        let s = format!("{p:?}");
        assert!(s.contains("CjzProtocol"));
        assert!(s.contains("One"));
    }
}
