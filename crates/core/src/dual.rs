//! The framework algorithm on the idealized two-channel substrate.
//!
//! With two real channels (Section 2's thought experiment) the protocol
//! collapses to two phases:
//!
//! * **Sync** — a fresh node runs `(f/a)`-backoff **on the control
//!   channel** until a control-channel success occurs (it cannot just
//!   listen: it might be alone);
//! * **Batch** — `h_ctrl`-batch on the control channel plus `h_data`-batch
//!   on the data channel, restarting at every control success.
//!
//! No Phase 1 (the channels are physically labelled), no parity arithmetic,
//! and crucially **full slot rate on both channels** — each conceptual
//! channel gets every slot instead of every other slot. Comparing this to
//! the single-channel protocol isolates the total cost of the paper's
//! model restrictions (E9a″).

use contention_backoff::{HBackoff, HBatch};
use contention_sim::dual::{DualProtocol, DualProtocolFactory};
use contention_sim::{Action, Feedback, NodeId};
use rand::RngCore;

use crate::params::ProtocolParams;
use crate::phase::PhaseKind;
use crate::protocol::FSendCount;

enum State {
    Sync { backoff: HBackoff<FSendCount> },
    Batch { ctrl: HBatch, data: HBatch },
}

/// Two-channel framework node.
pub struct DualCjzProtocol {
    params: ProtocolParams,
    state: State,
    restarts: u64,
}

impl DualCjzProtocol {
    /// Fresh node in the sync phase.
    pub fn new(params: ProtocolParams) -> Self {
        let f = params.f();
        DualCjzProtocol {
            params,
            state: State::Sync {
                backoff: HBackoff::new(FSendCount::new(f)),
            },
            restarts: 0,
        }
    }

    /// Conceptual phase (`Two` while syncing, `Three` once batching).
    pub fn phase(&self) -> PhaseKind {
        match self.state {
            State::Sync { .. } => PhaseKind::Two,
            State::Batch { .. } => PhaseKind::Three,
        }
    }

    /// Batch restarts so far.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    fn enter_batch(&mut self) {
        self.state = State::Batch {
            ctrl: HBatch::ctrl(self.params.c3()),
            data: HBatch::data(),
        };
    }
}

impl DualProtocol for DualCjzProtocol {
    fn name(&self) -> &'static str {
        "cjz-dual"
    }

    fn act(&mut self, _local_slot: u64, rng: &mut dyn RngCore) -> (Action, Action) {
        match &mut self.state {
            State::Sync { backoff } => {
                let c = backoff.next(rng);
                (
                    Action::Listen,
                    if c { Action::Broadcast } else { Action::Listen },
                )
            }
            State::Batch { ctrl, data } => {
                let d = data.next(rng);
                let c = ctrl.next(rng);
                (
                    if d { Action::Broadcast } else { Action::Listen },
                    if c { Action::Broadcast } else { Action::Listen },
                )
            }
        }
    }

    fn observe(&mut self, _local_slot: u64, _data: Feedback, ctrl: Feedback) {
        if !ctrl.is_success() {
            return;
        }
        match self.state {
            State::Sync { .. } => self.enter_batch(),
            State::Batch { .. } => {
                self.restarts += 1;
                self.enter_batch();
            }
        }
    }
}

impl std::fmt::Debug for DualCjzProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DualCjzProtocol")
            .field("phase", &self.phase())
            .finish_non_exhaustive()
    }
}

/// Factory for [`DualCjzProtocol`].
#[derive(Debug, Clone)]
pub struct DualCjzFactory {
    params: ProtocolParams,
}

impl DualCjzFactory {
    /// Factory with the given parameters.
    pub fn new(params: ProtocolParams) -> Self {
        DualCjzFactory { params }
    }
}

impl DualProtocolFactory for DualCjzFactory {
    fn spawn(&self, _id: NodeId) -> Box<dyn DualProtocol> {
        Box::new(DualCjzProtocol::new(self.params.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention_sim::adversary::{BatchArrival, CompositeAdversary, NoJamming, RandomJamming};
    use contention_sim::dual::DualSimulator;
    use contention_sim::SimConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn starts_syncing_on_ctrl_only() {
        let mut p = DualCjzProtocol::new(ProtocolParams::constant_jamming());
        assert_eq!(p.phase(), PhaseKind::Two);
        let mut rng = SmallRng::seed_from_u64(1);
        // Stage 0 of the sync backoff sends in its first ctrl slot; the
        // data channel stays silent throughout sync.
        let (d, c) = p.act(0, &mut rng);
        assert_eq!(d, Action::Listen);
        assert_eq!(c, Action::Broadcast);
    }

    #[test]
    fn ctrl_success_enters_batch_and_restarts() {
        let mut p = DualCjzProtocol::new(ProtocolParams::constant_jamming());
        p.observe(0, Feedback::NoSuccess, Feedback::Success(NodeId::new(1)));
        assert_eq!(p.phase(), PhaseKind::Three);
        assert_eq!(p.restarts(), 0);
        // Data success alone: no restart.
        p.observe(1, Feedback::Success(NodeId::new(2)), Feedback::NoSuccess);
        assert_eq!(p.restarts(), 0);
        p.observe(2, Feedback::NoSuccess, Feedback::Success(NodeId::new(3)));
        assert_eq!(p.restarts(), 1);
    }

    #[test]
    fn dual_drains_a_jammed_batch() {
        let factory = DualCjzFactory::new(ProtocolParams::constant_jamming());
        let adv = CompositeAdversary::new(BatchArrival::at_start(64), RandomJamming::new(0.25));
        let mut sim = DualSimulator::new(SimConfig::with_seed(7), factory, adv);
        assert!(sim.run_until_drained(2_000_000));
        assert_eq!(sim.successes(), 64);
    }

    #[test]
    fn dual_is_faster_than_single_channel() {
        // The idealized substrate should beat the real protocol (that is
        // the point of the ablation): same workload, both drain, dual
        // strictly fewer slots on average over a few seeds.
        let n = 128u32;
        let mut dual_total = 0u64;
        let mut single_total = 0u64;
        for seed in 0..3u64 {
            let dual_factory = DualCjzFactory::new(ProtocolParams::constant_jamming());
            let adv = CompositeAdversary::new(BatchArrival::at_start(n), NoJamming);
            let mut dual = DualSimulator::new(SimConfig::with_seed(seed), dual_factory, adv);
            assert!(dual.run_until_drained(10_000_000));
            dual_total += dual.current_slot();

            let single_factory = crate::CjzFactory::new(ProtocolParams::constant_jamming());
            let adv = CompositeAdversary::new(BatchArrival::at_start(n), NoJamming);
            let mut single =
                contention_sim::Simulator::new(SimConfig::with_seed(seed), single_factory, adv);
            single.run_until_drained(10_000_000);
            single_total += single.current_slot();
        }
        assert!(
            dual_total < single_total,
            "two ideal channels must beat one: dual {dual_total} vs single {single_total}"
        );
    }
}
