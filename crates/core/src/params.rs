//! Protocol parameters.
//!
//! The algorithm takes the jamming-tolerance function `g` as input
//! (Section 2.1) plus three constants:
//!
//! * `a`  — the paper's global throughput constant (appears in `f = a·c₂·…`
//!   and in the `(1/a·f)`-backoff density);
//! * `c₂` — the backoff density constant of Lemma 3.3;
//! * `c₃` — the control-batch constant (`h_ctrl(x) = c₃·log x / x`).
//!
//! The proofs pick these "sufficiently large"; such values would push the
//! asymptotics beyond any feasible simulation horizon, so the defaults here
//! are calibrated empirically (see EXPERIMENTS.md) and every experiment
//! reports the constants it ran with.

use contention_backoff::{FFunction, GFunction};

/// Parameters of the Chen–Jiang–Zheng protocol.
///
/// # Examples
///
/// ```
/// use contention_core::ProtocolParams;
///
/// // Worst-case tuning: g constant, so f(t) = Θ(log t).
/// let params = ProtocolParams::constant_jamming();
/// assert_eq!(params.g().at(1 << 20), 2.0);
/// assert_eq!(params.f().at(1 << 20), 20.0);
/// // Constants are overridable for calibration scans (E9).
/// let dense = ProtocolParams::constant_jamming().with_c2(4.0);
/// assert_eq!(dense.c2(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolParams {
    g: GFunction,
    a: f64,
    c2: f64,
    c3: f64,
}

impl ProtocolParams {
    /// Parameters for jamming tolerance `g` with calibrated default
    /// constants (`a = 1`, `c₂ = 1`, `c₃ = 2`).
    pub fn new(g: GFunction) -> Self {
        ProtocolParams {
            g,
            a: 1.0,
            c2: 1.0,
            c3: 2.0,
        }
    }

    /// Tolerate a constant fraction of jammed slots (`g` constant) — the
    /// worst-case regime with best throughput `Θ(1/log t)`.
    pub fn constant_jamming() -> Self {
        Self::new(GFunction::Constant(2.0))
    }

    /// Maximum admissible `g` (`2^√log x`), giving constant throughput —
    /// the no/low-jamming regime of Remark 2.
    pub fn constant_throughput() -> Self {
        Self::new(GFunction::ExpSqrtLog(1.0))
    }

    /// Override the constant `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not strictly positive and finite.
    pub fn with_a(mut self, a: f64) -> Self {
        assert!(a.is_finite() && a > 0.0, "a must be positive");
        self.a = a;
        self
    }

    /// Override the constant `c₂`.
    ///
    /// # Panics
    ///
    /// Panics if `c2` is not strictly positive and finite.
    pub fn with_c2(mut self, c2: f64) -> Self {
        assert!(c2.is_finite() && c2 > 0.0, "c2 must be positive");
        self.c2 = c2;
        self
    }

    /// Override the constant `c₃`.
    ///
    /// # Panics
    ///
    /// Panics if `c3` is not strictly positive and finite.
    pub fn with_c3(mut self, c3: f64) -> Self {
        assert!(c3.is_finite() && c3 > 0.0, "c3 must be positive");
        self.c3 = c3;
        self
    }

    /// The jamming-tolerance function `g`.
    pub fn g(&self) -> &GFunction {
        &self.g
    }

    /// The constant `a`.
    pub fn a(&self) -> f64 {
        self.a
    }

    /// The constant `c₂`.
    pub fn c2(&self) -> f64 {
        self.c2
    }

    /// The constant `c₃`.
    pub fn c3(&self) -> f64 {
        self.c3
    }

    /// The derived throughput function `f(x) = a·c₂·log x / log²(g(x)/a)`.
    pub fn f(&self) -> FFunction {
        FFunction::new(self.g.clone(), self.a, self.c2)
    }

    /// Label for reports.
    pub fn label(&self) -> String {
        format!(
            "cjz[{} a={} c2={} c3={}]",
            self.g.label(),
            self.a,
            self.c2,
            self.c3
        )
    }
}

impl Default for ProtocolParams {
    /// Defaults to the constant-jamming (worst-case) regime.
    fn default() -> Self {
        Self::constant_jamming()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let p = ProtocolParams::default();
        assert_eq!(p.a(), 1.0);
        assert_eq!(p.c2(), 1.0);
        assert_eq!(p.c3(), 2.0);
        assert_eq!(*p.g(), GFunction::Constant(2.0));
    }

    #[test]
    fn builders() {
        let p = ProtocolParams::new(GFunction::Log)
            .with_a(2.0)
            .with_c2(3.0)
            .with_c3(4.0);
        assert_eq!(p.a(), 2.0);
        assert_eq!(p.c2(), 3.0);
        assert_eq!(p.c3(), 4.0);
        assert!(p.label().contains("g=log"));
    }

    #[test]
    fn derived_f_uses_constants() {
        let p = ProtocolParams::new(GFunction::Constant(2.0)).with_c2(2.0);
        let f = p.f();
        assert_eq!(f.c2(), 2.0);
        // g constant 2, a=1: denominator 1 => f = 2·log2(x).
        assert!((f.eval(1024.0) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn constant_throughput_regime_has_flat_f() {
        let p = ProtocolParams::constant_throughput();
        let f = p.f();
        let lo = f.at(1 << 16);
        let hi = f.at(1 << 40);
        assert!((hi / lo) < 1.5, "f should be ~constant: {lo} vs {hi}");
    }

    #[test]
    #[should_panic(expected = "c3 must be positive")]
    fn rejects_bad_c3() {
        let _ = ProtocolParams::default().with_c3(-1.0);
    }
}
