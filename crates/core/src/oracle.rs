//! The global-clock *oracle* variant (Section 2 framework, ablation).
//!
//! Section 2 sketches an easy solution "if nodes have access to a global
//! clock": fix the odd slots as the control channel and the even slots as
//! the data channel, skipping the Phase-1 agreement entirely. The model
//! denies that clock — the three-phase protocol exists precisely to pay
//! for it — so this variant is an *oracle ablation*: it measures what the
//! missing global clock (and hence Phase 1) costs the real protocol.
//!
//! The oracle node:
//!
//! * knows its global arrival slot (supplied by
//!   [`contention_sim::ProtocolFactory::spawn_with_arrival`]);
//! * runs Phase 2 immediately — `(f/a)`-backoff on globally-odd slots —
//!   until a success occurs on the control channel;
//! * then runs Phase 3 with globally fixed roles (control = odd,
//!   data = even), restarting at every control-channel success (no channel
//!   swap: roles are pinned by the clock).

use contention_backoff::{HBackoff, HBatch};
use contention_sim::{Action, Feedback, NodeId, Parity, Protocol, ProtocolFactory};
use rand::RngCore;

use crate::params::ProtocolParams;
use crate::phase::PhaseKind;
use crate::protocol::FSendCount;

const CTRL_PARITY: Parity = Parity::Odd;

#[derive(Clone)]
enum State {
    /// Phase 2 equivalent: waiting for a control-channel success.
    Sync { backoff: HBackoff<FSendCount> },
    /// Phase 3 equivalent: batches with globally fixed channel roles.
    Batch { ctrl: HBatch, data: HBatch },
}

/// Oracle node with a global clock.
#[derive(Clone)]
pub struct OracleParityProtocol {
    params: ProtocolParams,
    arrival_slot: u64,
    state: State,
    restarts: u64,
    /// Pristine batches cloned on every restart (reuses the interned
    /// probability tables instead of re-fetching them per restart).
    ctrl_proto: HBatch,
    data_proto: HBatch,
}

impl OracleParityProtocol {
    /// New oracle node that arrived at global slot `arrival_slot`.
    pub fn new(params: ProtocolParams, arrival_slot: u64) -> Self {
        let f = params.f();
        let ctrl_proto = HBatch::ctrl(params.c3());
        let data_proto = HBatch::data();
        OracleParityProtocol {
            params,
            arrival_slot,
            state: State::Sync {
                backoff: HBackoff::new(FSendCount::new(f)),
            },
            restarts: 0,
            ctrl_proto,
            data_proto,
        }
    }

    /// Which conceptual phase the node is in (`Two` while syncing, `Three`
    /// once batching — there is no Phase 1 with a global clock).
    pub fn phase(&self) -> PhaseKind {
        match self.state {
            State::Sync { .. } => PhaseKind::Two,
            State::Batch { .. } => PhaseKind::Three,
        }
    }

    /// Phase-3 restarts so far.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// The parameters this node runs with.
    pub fn params(&self) -> &ProtocolParams {
        &self.params
    }

    #[inline]
    fn global_slot(&self, local_slot: u64) -> u64 {
        self.arrival_slot + local_slot
    }

    fn act_impl<R: RngCore + ?Sized>(&mut self, local_slot: u64, rng: &mut R) -> Action {
        let global = self.global_slot(local_slot);
        let on_ctrl = CTRL_PARITY.contains(global);
        let send = match &mut self.state {
            State::Sync { backoff } => on_ctrl && backoff.next(rng),
            State::Batch { ctrl, data } => {
                if on_ctrl {
                    ctrl.next(rng)
                } else {
                    data.next(rng)
                }
            }
        };
        if send {
            Action::Broadcast
        } else {
            Action::Listen
        }
    }
}

impl Protocol for OracleParityProtocol {
    fn name(&self) -> &'static str {
        "cjz-oracle"
    }

    fn try_clone_box(&self) -> Option<Box<dyn Protocol + Send>> {
        Some(Box::new(self.clone()))
    }

    fn act(&mut self, local_slot: u64, rng: &mut dyn RngCore) -> Action {
        self.act_impl(local_slot, rng)
    }

    fn act_fast(&mut self, local_slot: u64, rng: &mut rand::rngs::SmallRng) -> Action {
        self.act_impl(local_slot, rng)
    }

    fn observes_failures(&self) -> bool {
        false
    }

    fn observe(&mut self, local_slot: u64, feedback: Feedback) {
        if !feedback.is_success() {
            return;
        }
        let global = self.global_slot(local_slot);
        if !CTRL_PARITY.contains(global) {
            // Data-channel success: a delivery, not a control signal.
            return;
        }
        match &self.state {
            State::Sync { .. } => {
                self.state = State::Batch {
                    ctrl: self.ctrl_proto.clone(),
                    data: self.data_proto.clone(),
                };
            }
            State::Batch { .. } => {
                self.restarts += 1;
                self.state = State::Batch {
                    ctrl: self.ctrl_proto.clone(),
                    data: self.data_proto.clone(),
                };
            }
        }
    }
}

impl std::fmt::Debug for OracleParityProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OracleParityProtocol")
            .field("phase", &self.phase())
            .field("arrival_slot", &self.arrival_slot)
            .finish_non_exhaustive()
    }
}

/// Factory for [`OracleParityProtocol`] nodes.
#[derive(Debug, Clone)]
pub struct OracleParityFactory {
    params: ProtocolParams,
}

impl OracleParityFactory {
    /// Factory with the given parameters.
    pub fn new(params: ProtocolParams) -> Self {
        OracleParityFactory { params }
    }
}

impl ProtocolFactory for OracleParityFactory {
    fn spawn(&self, _id: NodeId) -> Box<dyn Protocol> {
        // Without the arrival hook the oracle has no clock; default to
        // slot 1 (only correct for batch-at-start workloads — the engine
        // always uses `spawn_with_arrival`, so this path is for tests).
        Box::new(OracleParityProtocol::new(self.params.clone(), 1))
    }

    fn spawn_with_arrival(&self, _id: NodeId, arrival_slot: u64) -> Box<dyn Protocol> {
        Box::new(OracleParityProtocol::new(self.params.clone(), arrival_slot))
    }

    fn algorithm_name(&self) -> String {
        "cjz-oracle".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn starts_in_sync_phase() {
        let p = OracleParityProtocol::new(ProtocolParams::default(), 1);
        assert_eq!(p.phase(), PhaseKind::Two);
        assert_eq!(p.name(), "cjz-oracle");
    }

    #[test]
    fn sync_only_sends_on_odd_global_slots() {
        // Arrival at global slot 2: local 0 => global 2 (even, data) must
        // listen; local 1 => global 3 (odd, ctrl) runs backoff stage 0 and
        // must send.
        let mut p = OracleParityProtocol::new(ProtocolParams::default(), 2);
        let mut r = rng(1);
        assert_eq!(p.act(0, &mut r), Action::Listen);
        assert_eq!(p.act(1, &mut r), Action::Broadcast);
    }

    #[test]
    fn ctrl_success_enters_batch_and_restarts() {
        let mut p = OracleParityProtocol::new(ProtocolParams::default(), 1);
        // Global slot of local 0 is 1 (odd = ctrl): success → batch.
        p.observe(0, Feedback::Success(NodeId::new(9)));
        assert_eq!(p.phase(), PhaseKind::Three);
        assert_eq!(p.restarts(), 0);
        // Data-channel success (global even): ignored.
        p.observe(1, Feedback::Success(NodeId::new(9)));
        assert_eq!(p.restarts(), 0);
        // Another ctrl success: restart.
        p.observe(2, Feedback::Success(NodeId::new(9)));
        assert_eq!(p.restarts(), 1);
    }

    #[test]
    fn no_success_no_transition() {
        let mut p = OracleParityProtocol::new(ProtocolParams::default(), 1);
        for s in 0..20 {
            p.observe(s, Feedback::NoSuccess);
        }
        assert_eq!(p.phase(), PhaseKind::Two);
    }

    #[test]
    fn factory_passes_arrival_slot() {
        let f = OracleParityFactory::new(ProtocolParams::default());
        let node = f.spawn_with_arrival(NodeId::new(0), 7);
        assert_eq!(node.name(), "cjz-oracle");
        assert_eq!(f.algorithm_name(), "cjz-oracle");
        let dbg = format!("{:?}", f);
        assert!(dbg.contains("OracleParityFactory"));
    }

    #[test]
    fn oracle_drains_a_batch_end_to_end() {
        use contention_sim::prelude::*;
        let factory = OracleParityFactory::new(ProtocolParams::constant_jamming());
        let adv = CompositeAdversary::new(BatchArrival::at_start(32), RandomJamming::new(0.2));
        let mut sim = Simulator::new(SimConfig::with_seed(5), factory, adv);
        let stop = sim.run_until_drained(2_000_000);
        assert_eq!(stop, StopReason::Drained);
        assert_eq!(sim.trace().total_successes(), 32);
    }
}
