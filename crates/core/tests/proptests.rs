//! Property tests for the protocol state machine: total behaviour under
//! arbitrary feedback sequences.

use contention_core::{CjzProtocol, OracleParityProtocol, PhaseKind, ProtocolParams};
use contention_sim::{Action, Feedback, NodeId, Protocol};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Arbitrary feedback: ~20% successes.
fn feedback_strategy() -> impl Strategy<Value = bool> {
    prop::bool::weighted(0.2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The protocol never panics and phases only move forward (1 → 2 → 3,
    /// then stays in 3) under any feedback sequence.
    #[test]
    fn phases_progress_monotonically(
        seed in 0u64..10_000,
        feedback in prop::collection::vec(feedback_strategy(), 1..300),
    ) {
        let mut p = CjzProtocol::new(ProtocolParams::constant_jamming());
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut best = 0u8;
        for (slot, &succ) in feedback.iter().enumerate() {
            let slot = slot as u64;
            let _ = p.act(slot, &mut rng);
            let fb = if succ {
                Feedback::Success(NodeId::new(999))
            } else {
                Feedback::NoSuccess
            };
            p.observe(slot, fb);
            let rank = match p.phase() {
                PhaseKind::One => 0,
                PhaseKind::Two => 1,
                PhaseKind::Three => 2,
            };
            prop_assert!(rank >= best, "phase went backwards");
            best = best.max(rank);
        }
    }

    /// Without any success the node stays in Phase 1 forever and only
    /// broadcasts on its arrival-parity (even local) slots.
    #[test]
    fn phase1_channel_discipline(seed in 0u64..10_000, slots in 1u64..500) {
        let mut p = CjzProtocol::new(ProtocolParams::constant_jamming());
        let mut rng = SmallRng::seed_from_u64(seed);
        for slot in 0..slots {
            let act = p.act(slot, &mut rng);
            if slot % 2 == 1 {
                prop_assert_eq!(act, Action::Listen, "phase-1 node acted on the other channel");
            }
            p.observe(slot, Feedback::NoSuccess);
            prop_assert_eq!(p.phase(), PhaseKind::One);
        }
    }

    /// Phase-3 restart counting: every control-channel success after
    /// entering Phase 3 increments restarts by exactly one.
    #[test]
    fn restart_counting(seed in 0u64..10_000, extra_successes in 0u64..20) {
        let mut p = CjzProtocol::new(ProtocolParams::constant_jamming());
        let mut rng = SmallRng::seed_from_u64(seed);
        // Deterministic path to Phase 3: success at local 0 (→2), ctrl
        // success at local 1 (→3, anchor 1; ctrl parity = parity(2) = even).
        let _ = p.act(0, &mut rng);
        p.observe(0, Feedback::Success(NodeId::new(1)));
        let _ = p.act(1, &mut rng);
        p.observe(1, Feedback::Success(NodeId::new(2)));
        prop_assert_eq!(p.phase(), PhaseKind::Three);

        // Feed successes on the *current* control channel each time; the
        // anchor moves, so track parity.
        let mut anchor = 1u64;
        let mut slot = 2u64;
        for _ in 0..extra_successes {
            // Next control-channel slot: same parity as anchor+1.
            while !(slot.wrapping_sub(anchor + 1)).is_multiple_of(2) {
                slot += 1;
            }
            let _ = p.act(slot, &mut rng);
            p.observe(slot, Feedback::Success(NodeId::new(3)));
            anchor = slot;
            slot += 1;
        }
        prop_assert_eq!(p.stats().phase3_restarts, extra_successes);
    }

    /// The oracle variant is equally total and never regresses from batch
    /// to sync.
    #[test]
    fn oracle_total(
        seed in 0u64..10_000,
        arrival in 1u64..1000,
        feedback in prop::collection::vec(feedback_strategy(), 1..200),
    ) {
        let mut p = OracleParityProtocol::new(ProtocolParams::constant_jamming(), arrival);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut reached_batch = false;
        for (slot, &succ) in feedback.iter().enumerate() {
            let slot = slot as u64;
            let _ = p.act(slot, &mut rng);
            let fb = if succ { Feedback::Success(NodeId::new(7)) } else { Feedback::NoSuccess };
            p.observe(slot, fb);
            if p.phase() == PhaseKind::Three {
                reached_batch = true;
            }
            if reached_batch {
                prop_assert_eq!(p.phase(), PhaseKind::Three);
            }
        }
    }

    /// Determinism of the protocol object itself: same seed + same inputs
    /// ⇒ same action sequence.
    #[test]
    fn protocol_determinism(
        seed in 0u64..10_000,
        feedback in prop::collection::vec(feedback_strategy(), 1..200),
    ) {
        let run = || {
            let mut p = CjzProtocol::new(ProtocolParams::constant_jamming());
            let mut rng = SmallRng::seed_from_u64(seed);
            feedback
                .iter()
                .enumerate()
                .map(|(slot, &succ)| {
                    let slot = slot as u64;
                    let a = p.act(slot, &mut rng);
                    let fb = if succ {
                        Feedback::Success(NodeId::new(0))
                    } else {
                        Feedback::NoSuccess
                    };
                    p.observe(slot, fb);
                    a
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
